#include "tmpl/cppgen.h"

#include <vector>

#include "support/error.h"
#include "support/strings.h"
#include "tmpl/spelling.h"

namespace heidi::tmpl {

namespace {

using spelling::IsSequence;
using spelling::SequenceElement;

// Indentation used between generated statements: a newline plus the
// 4-space context the templates emit statements in.
constexpr const char* kSep = "\n    ";

[[noreturn]] void Unsupported(const std::string& what) {
  throw TemplateError("heidi_cpp generator: " + what);
}

// Follows alias entries to the underlying spelling.
std::string Unalias(std::string spell, const MapContext& ctx) {
  for (int depth = 0; depth < 16; ++depth) {
    const TypeEntry* entry =
        ctx.types != nullptr ? ctx.types->Find(spell) : nullptr;
    if (entry == nullptr || entry->tag != "alias") return spell;
    spell = entry->alias_type;
  }
  return spell;
}

struct ParamCtx {
  std::string spell;      // declared spelling ("Heidi::SSequence")
  std::string under;      // unaliased spelling ("sequence<Heidi::S>")
  std::string kind;       // wire kind of `under`
  std::string name;       // C++ parameter name
  std::string local;      // skeleton local ("hd_p_<name>")
  std::string direction;  // in / out / inout / incopy
  std::string repo_id;    // repo id of the declared type (objref/named)
};

ParamCtx MakeParamCtx(const std::string& spell, const MapContext& ctx) {
  ParamCtx p;
  p.spell = spell;
  p.under = Unalias(spell, ctx);
  p.kind = WireCallKind(p.under, ctx);
  p.name = ctx.node != nullptr ? ctx.node->GetProp("paramName") : "";
  if (p.name.empty() && ctx.node != nullptr) {
    p.name = ctx.node->GetProp("name");
  }
  p.local = "hd_p_" + p.name;
  p.direction =
      ctx.node != nullptr ? ctx.node->GetProp("direction", "in") : "in";
  p.repo_id = ctx.node != nullptr ? ctx.node->GetProp("typeRepoId") : "";
  if (p.repo_id.empty() && ctx.types != nullptr) {
    const TypeEntry* entry = ctx.types->Find(spell);
    if (entry != nullptr) p.repo_id = entry->repo_id;
  }
  return p;
}

bool IsOut(const ParamCtx& p) { return p.direction == "out"; }
bool IsInOut(const ParamCtx& p) { return p.direction == "inout"; }
bool IsIncopy(const ParamCtx& p) { return p.direction == "incopy"; }

// Repo id of an element/other spelling via the index.
std::string RepoOf(const std::string& spell, const MapContext& ctx) {
  const TypeEntry* entry =
      ctx.types != nullptr ? ctx.types->Find(spell) : nullptr;
  if (entry == nullptr || entry->repo_id.empty()) {
    Unsupported("cannot determine repository id of '" + spell + "'");
  }
  return entry->repo_id;
}

// --- primitive statement pieces ----------------------------------------------

// `recv` is "hd_call->", "hd_out.", etc.; returns "" for non-primitive kinds.
std::string PutPrim(const std::string& recv, const std::string& kind,
                    const std::string& expr) {
  if (kind == "Long")
    return recv + "PutLong(static_cast<int32_t>(" + expr + "));";
  if (kind == "ULong")
    return recv + "PutULong(static_cast<uint32_t>(" + expr + "));";
  if (kind == "Short")
    return recv + "PutShort(static_cast<int16_t>(" + expr + "));";
  if (kind == "UShort")
    return recv + "PutUShort(static_cast<uint16_t>(" + expr + "));";
  if (kind == "LongLong") return recv + "PutLongLong(" + expr + ");";
  if (kind == "ULongLong") return recv + "PutULongLong(" + expr + ");";
  if (kind == "Float") return recv + "PutFloat(" + expr + ");";
  if (kind == "Double") return recv + "PutDouble(" + expr + ");";
  if (kind == "Char") return recv + "PutChar(" + expr + ");";
  if (kind == "Octet") return recv + "PutOctet(" + expr + ");";
  if (kind == "Boolean") return recv + "PutBoolean(" + expr + ");";
  if (kind == "String") return recv + "PutString(" + expr + ");";
  if (kind == "Enum")
    return recv + "PutEnum(static_cast<int32_t>(" + expr + "));";
  return "";
}

// C++ value type + extraction expression for primitive-ish kinds; empty
// type for non-primitives. `recv` like "hd_in." / "hd_reply->".
struct PrimGet {
  std::string cpp_type;
  std::string expr;
};

PrimGet GetPrim(const std::string& recv, const std::string& kind,
                const std::string& declared_cpp) {
  if (kind == "Long") return {"long", recv + "GetLong()"};
  if (kind == "ULong") return {"unsigned long", recv + "GetULong()"};
  if (kind == "Short") return {"short", recv + "GetShort()"};
  if (kind == "UShort") return {"unsigned short", recv + "GetUShort()"};
  if (kind == "LongLong") return {"long long", recv + "GetLongLong()"};
  if (kind == "ULongLong")
    return {"unsigned long long", recv + "GetULongLong()"};
  if (kind == "Float") return {"float", recv + "GetFloat()"};
  if (kind == "Double") return {"double", recv + "GetDouble()"};
  if (kind == "Char") return {"char", recv + "GetChar()"};
  if (kind == "Octet") return {"unsigned char", recv + "GetOctet()"};
  if (kind == "Boolean") return {"XBool", "XBool(" + recv + "GetBoolean())"};
  if (kind == "String") return {"HdString", recv + "GetString()"};
  if (kind == "Enum") {
    return {declared_cpp,
            "static_cast<" + declared_cpp + ">(" + recv + "GetEnum())"};
  }
  return {"", ""};
}

// Mapped C++ class name of a declared (possibly scoped) type.
std::string ClassOf(const std::string& spell) {
  return HeidiMapClassName(spell);
}

// Mapped sequence container type: the alias class if the declared type is
// an alias, else the structural HdList<...> type.
std::string SeqType(const ParamCtx& p, const MapContext& ctx) {
  const TypeEntry* entry =
      ctx.types != nullptr ? ctx.types->Find(p.spell) : nullptr;
  if (entry != nullptr && entry->tag == "alias") return ClassOf(p.spell);
  return HeidiMapElemType(p.under, ctx);
}

// --- sequence pieces ------------------------------------------------------------

// Marshals a sequence parameter into *hd_call (stub side).
std::string PutSequence(const ParamCtx& p, const MapContext& ctx) {
  const std::string recv = "hd_call->";
  std::string elem = SequenceElement(p.under);
  std::string elem_under = Unalias(elem, ctx);
  std::string elem_kind = WireCallKind(elem_under, ctx);
  if (elem_kind == "Sequence" || elem_kind == "Struct") {
    Unsupported("sequences of '" + elem + "' are not supported");
  }
  std::string elem_put;
  if (elem_kind == "Object") {
    elem_put = "GetOrb().PutObject(*hd_call, hd_elem, \"" +
               RepoOf(elem, ctx) + "\", false);";
  } else {
    elem_put = PutPrim(recv, elem_kind, "hd_elem");
  }
  std::string out;
  out += recv + "Begin(\"seq\");";
  out += kSep;
  out += recv + "PutLength(" + p.name + " == nullptr ? 0u : "
         "static_cast<uint32_t>(" + p.name + "->Size()));";
  out += kSep;
  out += "if (" + p.name + " != nullptr) { for (auto& hd_elem : *" + p.name +
         ") { " + elem_put + " } }";
  out += kSep;
  out += recv + "End();";
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Registered generator functions

namespace {

// CPP::MapParamType — signature type, direction-aware.
std::string MapParamType(const std::string& spell, const MapContext& ctx) {
  ParamCtx p = MakeParamCtx(spell, ctx);
  std::string base = HeidiMapType(spell, ctx);
  if (!IsOut(p) && !IsInOut(p)) return base;
  if (p.kind == "Object" || p.kind == "Sequence" || p.kind == "Struct") {
    Unsupported("out/inout parameter '" + p.name + "' of type '" + spell +
                "' is not supported");
  }
  return base + "&";
}

// --- view parameter-passing mode ------------------------------------------
//
// The paper's custom-mapping axis applied to the zero-copy runtime: under
// the `view` mode an interface's `in` strings map to HdStringView and its
// `in` octet sequences to HdBytesView — non-owning windows over the
// retained request frame (GetStringView/GetBytesView), valid for the
// duration of the dispatch only. Everything else (out/inout, results,
// attributes, other element types) keeps the owned mapping. Selected per
// interface via the `viewInterfaces` global (idlc --view-interfaces).

// True when `p` is an `in`/`incopy` octet sequence — the one sequence
// shape with a bulk zero-copy wire form (PutBytes/GetBytesView).
bool IsViewableBytes(const ParamCtx& p, const MapContext& ctx) {
  if (p.kind != "Sequence" || IsOut(p) || IsInOut(p)) return false;
  std::string elem_under = Unalias(SequenceElement(p.under), ctx);
  return WireCallKind(elem_under, ctx) == "Octet";
}

bool IsViewableString(const ParamCtx& p) {
  return p.kind == "String" && !IsOut(p) && !IsInOut(p);
}

// CPP::ViewMode — "view" if the current interface is named in the
// viewInterfaces global (comma-separated flat/scoped names, or "*"),
// else "owned". Applied to flatName so templates can branch with @if.
std::string ViewMode(const std::string& flat_name, const MapContext& ctx) {
  if (ctx.globals == nullptr) return "owned";
  auto it = ctx.globals->find("viewInterfaces");
  if (it == ctx.globals->end() || it->second.empty()) return "owned";
  std::string scoped =
      ctx.node != nullptr ? ctx.node->GetProp("interfaceName") : "";
  std::string plain = ctx.node != nullptr ? ctx.node->GetProp("name") : "";
  for (const std::string& raw : str::Split(it->second, ',')) {
    std::string_view want = str::Trim(raw);
    if (want.empty()) continue;
    if (want == "*" || want == flat_name || want == scoped || want == plain) {
      return "view";
    }
  }
  return "owned";
}

// CPP::MapParamTypeView — like MapParamType, but viewable `in`
// strings/octet sequences become non-owning view types.
// The view types carry a HEIDI_VIEW_PARAM tag (support/annotations.h,
// reachable from every generated file via orb/heidi_types.h): inert for
// the compiler, matchable by clang-tidy/clang-query lifetime tooling.
std::string MapParamTypeView(const std::string& spell, const MapContext& ctx) {
  ParamCtx p = MakeParamCtx(spell, ctx);
  if (IsViewableString(p)) return "HEIDI_VIEW_PARAM HdStringView";
  if (IsViewableBytes(p, ctx)) return "HEIDI_VIEW_PARAM HdBytesView";
  return MapParamType(spell, ctx);
}

// CPPGen::PutParam — stub side, receiver *hd_call.
std::string PutParam(const std::string& spell, const MapContext& ctx) {
  ParamCtx p = MakeParamCtx(spell, ctx);
  if (IsOut(p)) return "";  // nothing travels for pure out params
  if (p.kind == "Object") {
    return "GetOrb().PutObject(*hd_call, " + p.name + ", \"" +
           (p.repo_id.empty() ? RepoOf(spell, ctx) : p.repo_id) + "\", " +
           (IsIncopy(p) ? "true" : "false") + ");";
  }
  if (p.kind == "Sequence") return PutSequence(p, ctx);
  if (p.kind == "Struct") {
    Unsupported("struct parameter '" + p.name + "' is not supported");
  }
  std::string stmt = PutPrim("hd_call->", p.kind, p.name);
  if (stmt.empty()) Unsupported("parameter type '" + spell + "'");
  return stmt;
}

// CPPGen::PutParamView — stub side under the view mapping: a viewable
// octet sequence travels as one bulk PutBytes (the USC-style fast path)
// instead of element-wise; viewable strings already marshal from a
// string_view via PutString. Everything else delegates to PutParam.
std::string PutParamView(const std::string& spell, const MapContext& ctx) {
  ParamCtx p = MakeParamCtx(spell, ctx);
  if (IsViewableBytes(p, ctx)) return "hd_call->PutBytes(" + p.name + ");";
  return PutParam(spell, ctx);
}

// CPPGen::GetOutParam — stub side, receiver *hd_reply, after the result.
std::string GetOutParam(const std::string& spell, const MapContext& ctx) {
  ParamCtx p = MakeParamCtx(spell, ctx);
  if (!IsOut(p) && !IsInOut(p)) return "";
  PrimGet get = GetPrim("hd_reply->", p.kind, ClassOf(spell));
  if (get.expr.empty()) {
    Unsupported("out/inout parameter type '" + spell + "'");
  }
  return p.name + " = " + get.expr + ";";
}

// CPPGen::CaptureResult — stub side: declares hd_result from *hd_reply
// (the template returns hd_result after any out-parameters are read, so
// wire order — result first, then outs — is preserved).
std::string CaptureResult(const std::string& spell, const MapContext& ctx) {
  if (spell == "void") return "";
  ParamCtx p = MakeParamCtx(spell, ctx);
  if (p.kind == "Object") {
    std::string cls = ClassOf(spell);
    return "auto hd_result_h = GetOrb().GetObject(*hd_reply);" +
           std::string(kSep) + "auto* hd_result = ::heidi::orb::gen::Retain<" +
           cls + ">(hd_retained_, hd_result_h, \"" + cls + "\");";
  }
  if (p.kind == "Sequence" || p.kind == "Struct") {
    Unsupported("result type '" + spell + "' is not supported");
  }
  PrimGet get = GetPrim("hd_reply->", p.kind, ClassOf(spell));
  if (get.expr.empty()) Unsupported("result type '" + spell + "'");
  return "auto hd_result = " + get.expr + ";";
}

// CPPGen::PutAttrValue / CPPGen::GetAttrValue — attribute setters use the
// fixed parameter name hd_value.
std::string PutAttrValue(const std::string& spell, const MapContext& ctx) {
  ParamCtx p = MakeParamCtx(spell, ctx);
  p.name = "hd_value";
  if (p.kind == "Object") {
    return "GetOrb().PutObject(*hd_call, hd_value, \"" +
           (p.repo_id.empty() ? RepoOf(spell, ctx) : p.repo_id) +
           "\", false);";
  }
  if (p.kind == "Sequence" || p.kind == "Struct") {
    Unsupported("attribute type '" + spell + "' is not supported");
  }
  std::string stmt = PutPrim("hd_call->", p.kind, "hd_value");
  if (stmt.empty()) Unsupported("attribute type '" + spell + "'");
  return stmt;
}

std::string GetAttrValue(const std::string& spell, const MapContext& ctx) {
  ParamCtx p = MakeParamCtx(spell, ctx);
  if (p.kind == "Object") {
    std::string cls = ClassOf(spell);
    return "auto hd_value_h = GetOrb().GetObject(hd_in);" +
           std::string(kSep) + cls +
           "* hd_value = ::heidi::orb::gen::CastParam<" + cls +
           ">(hd_value_h, \"" + cls + "\");";
  }
  if (p.kind == "Sequence" || p.kind == "Struct") {
    Unsupported("attribute type '" + spell + "' is not supported");
  }
  PrimGet get = GetPrim("hd_in.", p.kind, ClassOf(spell));
  if (get.cpp_type.empty()) Unsupported("attribute type '" + spell + "'");
  return get.cpp_type + " hd_value = " + get.expr + ";";
}

// CPPGen::SkelGetParam — skeleton side, receiver hd_in.
std::string SkelGetParam(const std::string& spell, const MapContext& ctx) {
  ParamCtx p = MakeParamCtx(spell, ctx);
  if (p.kind == "Object") {
    if (IsOut(p) || IsInOut(p)) {
      Unsupported("out/inout object parameter '" + p.name + "'");
    }
    std::string cls = ClassOf(spell);
    return "auto " + p.local + "_h = GetOrb().GetObject(hd_in);" + kSep +
           cls + "* " + p.local + " = ::heidi::orb::gen::CastParam<" + cls +
           ">(" + p.local + "_h, \"" + cls + "\");";
  }
  if (p.kind == "Sequence") {
    if (IsOut(p) || IsInOut(p)) {
      Unsupported("out/inout sequence parameter '" + p.name + "'");
    }
    std::string seq_type = SeqType(p, ctx);
    std::string elem = SequenceElement(p.under);
    std::string elem_under = Unalias(elem, ctx);
    std::string elem_kind = WireCallKind(elem_under, ctx);
    std::string out;
    out += "hd_in.Begin(\"seq\");";
    out += kSep;
    out += "uint32_t " + p.local + "_n = hd_in.GetLength();";
    out += kSep;
    out += seq_type + " " + p.local + "_val;";
    out += kSep;
    out += "std::vector<std::shared_ptr<::heidi::HdObject>> " + p.local +
           "_hold;";
    out += kSep;
    out += "for (uint32_t hd_i = 0; hd_i < " + p.local + "_n; ++hd_i) { ";
    if (elem_kind == "Object") {
      std::string elem_cls = ClassOf(elem);
      out += "auto hd_eh = GetOrb().GetObject(hd_in); " + p.local +
             "_val.Append(::heidi::orb::gen::CastParam<" + elem_cls +
             ">(hd_eh, \"" + elem_cls + "\")); " + p.local +
             "_hold.push_back(hd_eh);";
    } else {
      PrimGet get = GetPrim("hd_in.", elem_kind, ClassOf(elem));
      if (get.expr.empty()) {
        Unsupported("sequence element type '" + elem + "'");
      }
      out += p.local + "_val.Append(" + get.expr + ");";
    }
    out += " }";
    out += kSep;
    out += "hd_in.End();";
    out += kSep;
    out += seq_type + "* " + p.local + " = &" + p.local + "_val;";
    return out;
  }
  if (p.kind == "Struct") {
    Unsupported("struct parameter '" + p.name + "' is not supported");
  }
  PrimGet get = GetPrim("hd_in.", p.kind, ClassOf(spell));
  if (get.cpp_type.empty()) Unsupported("parameter type '" + spell + "'");
  if (IsOut(p)) {
    return get.cpp_type + " " + p.local + "{};";  // nothing on the wire
  }
  return get.cpp_type + " " + p.local + " = " + get.expr + ";";
}

// CPPGen::SkelGetParamView — skeleton side under the view mapping:
// viewable `in` strings/octet sequences unmarshal as views straight into
// the retained frame slab (no copy); the rest delegates to SkelGetParam.
// The view locals die with the dispatch — implementations must copy
// anything they keep.
std::string SkelGetParamView(const std::string& spell, const MapContext& ctx) {
  ParamCtx p = MakeParamCtx(spell, ctx);
  if (IsViewableString(p)) {
    return "HdStringView " + p.local + " = hd_in.GetStringView();";
  }
  if (IsViewableBytes(p, ctx)) {
    return "HdBytesView " + p.local + " = hd_in.GetBytesView();";
  }
  return SkelGetParam(spell, ctx);
}

// CPPGen::SkelArg — expression handed to the implementation.
std::string SkelArg(const std::string& spell, const MapContext& ctx) {
  ParamCtx p = MakeParamCtx(spell, ctx);
  (void)spell;
  return p.local;  // sequences bind a pointer local of the same name
}

// CPPGen::SkelPutOut — skeleton side, receiver hd_out, after the result.
std::string SkelPutOut(const std::string& spell, const MapContext& ctx) {
  ParamCtx p = MakeParamCtx(spell, ctx);
  if (!IsOut(p) && !IsInOut(p)) return "";
  std::string stmt = PutPrim("hd_out.", p.kind, p.local);
  if (stmt.empty()) Unsupported("out/inout parameter type '" + spell + "'");
  return stmt;
}

// CPPGen::SkelPutResult — marshals hd_result.
std::string SkelPutResult(const std::string& spell, const MapContext& ctx) {
  if (spell == "void") return "";
  ParamCtx p = MakeParamCtx(spell, ctx);
  if (p.kind == "Object") {
    return "GetOrb().PutObject(hd_out, hd_result, \"" +
           (p.repo_id.empty() ? RepoOf(spell, ctx) : p.repo_id) +
           "\", false);";
  }
  if (p.kind == "Sequence" || p.kind == "Struct") {
    Unsupported("result type '" + spell + "' is not supported");
  }
  std::string stmt = PutPrim("hd_out.", p.kind, "hd_result");
  if (stmt.empty()) Unsupported("result type '" + spell + "'");
  return stmt;
}

// CPPGen::ExFieldPut — skeleton catch clause: marshal one exception field
// (hd_ex.<name>) into hd_out.
std::string ExFieldPut(const std::string& spell, const MapContext& ctx) {
  ParamCtx p = MakeParamCtx(spell, ctx);
  std::string field =
      ctx.node != nullptr ? ctx.node->GetProp("fieldName") : "";
  std::string stmt = PutPrim("hd_out.", p.kind, "hd_ex." + field);
  if (stmt.empty()) {
    Unsupported("exception field type '" + spell +
                "' (only primitives, strings, and enums)");
  }
  return stmt;
}

// CPPGen::ExFieldGet — client thrower: unmarshal one field from the reply
// into hd_ex.<name>.
std::string ExFieldGet(const std::string& spell, const MapContext& ctx) {
  ParamCtx p = MakeParamCtx(spell, ctx);
  std::string field =
      ctx.node != nullptr ? ctx.node->GetProp("fieldName") : "";
  PrimGet get = GetPrim("hd_reply.", p.kind, ClassOf(spell));
  if (get.expr.empty()) {
    Unsupported("exception field type '" + spell +
                "' (only primitives, strings, and enums)");
  }
  return "hd_ex." + field + " = " + get.expr + ";";
}

}  // namespace

void RegisterCppGen(MapRegistry& reg) {
  reg.Register("CPP::ViewMode", ViewMode);
  reg.Register("CPP::MapParamType", MapParamType);
  reg.Register("CPP::MapParamTypeView", MapParamTypeView);
  reg.Register("CPPGen::PutParam", PutParam);
  reg.Register("CPPGen::PutParamView", PutParamView);
  reg.Register("CPPGen::SkelGetParamView", SkelGetParamView);
  reg.Register("CPPGen::GetOutParam", GetOutParam);
  reg.Register("CPPGen::CaptureResult", CaptureResult);
  reg.Register("CPPGen::PutAttrValue", PutAttrValue);
  reg.Register("CPPGen::GetAttrValue", GetAttrValue);
  reg.Register("CPPGen::SkelGetParam", SkelGetParam);
  reg.Register("CPPGen::SkelArg", SkelArg);
  reg.Register("CPPGen::SkelPutOut", SkelPutOut);
  reg.Register("CPPGen::SkelPutResult", SkelPutResult);
  reg.Register("CPPGen::ExFieldPut", ExFieldPut);
  reg.Register("CPPGen::ExFieldGet", ExFieldGet);
}

}  // namespace heidi::tmpl
