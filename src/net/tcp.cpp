#include "net/tcp.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>

#include "support/error.h"

namespace heidi::net {

namespace {

[[noreturn]] void FailErrno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

class TcpChannel : public ByteChannel {
 public:
  TcpChannel(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {}

  ~TcpChannel() override { Close(); }

  size_t Read(char* buf, size_t n) override {
    while (true) {
      ssize_t r = ::recv(fd_, buf, n, 0);
      if (r >= 0) return static_cast<size_t>(r);
      if (errno == EINTR) continue;
      // A reset from a peer that closed while we were mid-protocol is an
      // EOF condition at this layer, not a programming error.
      if (errno == ECONNRESET || errno == EBADF) return 0;
      FailErrno("recv from " + peer_);
    }
  }

  void WriteAll(const char* data, size_t n) override {
    size_t sent = 0;
    while (sent < n) {
      ssize_t w = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        FailErrno("send to " + peer_);
      }
      sent += static_cast<size_t>(w);
    }
  }

  void Close() override {
    std::lock_guard lock(close_mutex_);
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

  std::string PeerName() const override { return peer_; }

 private:
  int fd_;
  std::string peer_;
  std::mutex close_mutex_;
};

std::string PeerOf(const sockaddr_storage& addr) {
  char host[NI_MAXHOST] = "?";
  char serv[NI_MAXSERV] = "?";
  ::getnameinfo(reinterpret_cast<const sockaddr*>(&addr), sizeof addr, host,
                sizeof host, serv, sizeof serv,
                NI_NUMERICHOST | NI_NUMERICSERV);
  return std::string(host) + ":" + serv;
}

}  // namespace

std::unique_ptr<ByteChannel> TcpConnect(const std::string& host,
                                        uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  std::string service = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &result);
  if (rc != 0) {
    throw NetError("resolve " + host + ": " + ::gai_strerror(rc));
  }
  int fd = -1;
  std::string last_error = "no addresses";
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last_error = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    throw NetError("connect " + host + ":" + service + ": " + last_error);
  }
  SetNoDelay(fd);
  return std::make_unique<TcpChannel>(fd, host + ":" + service);
}

TcpAcceptor::TcpAcceptor(uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) FailErrno("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    FailErrno("bind port " + std::to_string(port));
  }
  if (::listen(fd_, 64) != 0) {
    int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    FailErrno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    FailErrno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpAcceptor::~TcpAcceptor() { Close(); }

std::unique_ptr<ByteChannel> TcpAcceptor::Accept() {
  while (true) {
    sockaddr_storage addr{};
    socklen_t len = sizeof addr;
    int fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Closed (or any terminal condition): report orderly shutdown.
      return nullptr;
    }
    SetNoDelay(fd);
    return std::make_unique<TcpChannel>(fd, PeerOf(addr));
  }
}

void TcpAcceptor::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace heidi::net
