#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>

#include "support/bytes.h"
#include "support/error.h"

namespace heidi::net {

namespace {

[[noreturn]] void FailErrno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

// Milliseconds left until `deadline`, clamped to >= 0; -1 when the caller
// asked for no deadline. Poll loops must re-poll with the *remaining*
// budget after EINTR or a spurious wakeup, never the original one —
// restarting the full timeout lets a signal-happy process wait forever.
int RemainingMs(int timeout_ms,
                std::chrono::steady_clock::time_point deadline) {
  if (timeout_ms < 0) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - std::chrono::steady_clock::now())
                  .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

class TcpChannel : public ByteChannel {
 public:
  TcpChannel(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {}

  ~TcpChannel() override {
    int fd = fd_.exchange(-1, std::memory_order_relaxed);
    if (fd >= 0) ::close(fd);
  }

  size_t Read(char* buf, size_t n) override {
    while (true) {
      ssize_t r = ::recv(fd_.load(std::memory_order_relaxed), buf, n, 0);
      if (r >= 0) return static_cast<size_t>(r);
      if (errno == EINTR) continue;
      // A reset from a peer that closed while we were mid-protocol is an
      // EOF condition at this layer, not a programming error.
      if (errno == ECONNRESET || errno == EBADF) return 0;
      FailErrno("recv from " + peer_);
    }
  }

  void WriteAll(const char* data, size_t n) override {
    size_t sent = 0;
    while (sent < n) {
      ssize_t w = ::send(fd_.load(std::memory_order_relaxed), data + sent,
                         n - sent, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        FailErrno("send to " + peer_);
      }
      sent += static_cast<size_t>(w);
    }
  }

  void WritevAll(const bytes::BufferChain& chain) override {
    // Real scatter-gather: one sendmsg per batch of up to kIovBatch
    // slices, resuming mid-slice after partial writes. The chain's
    // bytes reach the kernel without ever being assembled in userspace.
    static constexpr size_t kIovBatch = 64;  // <= IOV_MAX everywhere
    const std::vector<bytes::BufSlice>& slices = chain.Slices();
    size_t index = 0;   // first unsent slice
    size_t offset = 0;  // bytes of slices[index] already sent
    while (index < slices.size()) {
      iovec iov[kIovBatch];
      size_t iov_count = 0;
      for (size_t i = index; i < slices.size() && iov_count < kIovBatch;
           ++i) {
        size_t skip = i == index ? offset : 0;
        iov[iov_count].iov_base =
            const_cast<char*>(slices[i].Data() + skip);
        iov[iov_count].iov_len = slices[i].length - skip;
        ++iov_count;
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = iov_count;
      ssize_t w = ::sendmsg(fd_.load(std::memory_order_relaxed), &msg,
                            MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        FailErrno("sendmsg to " + peer_);
      }
      size_t sent = static_cast<size_t>(w);
      while (sent > 0) {
        size_t left = slices[index].length - offset;
        if (sent < left) {
          offset += sent;
          sent = 0;
        } else {
          sent -= left;
          ++index;
          offset = 0;
        }
      }
    }
  }

  bool WaitReadable(int timeout_ms) override {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 0);
    while (true) {
      pollfd pfd{};
      pfd.fd = fd_.load(std::memory_order_relaxed);
      pfd.events = POLLIN;
      if (pfd.fd < 0) return true;  // closed: Read returns 0 immediately
      int rc = ::poll(&pfd, 1, RemainingMs(timeout_ms, deadline));
      if (rc > 0) {
        // Inspect revents instead of trusting rc: POLLIN is data;
        // POLLHUP is the peer's half/full close and POLLERR|POLLNVAL are
        // terminal — all three resolve deterministically through Read()
        // (EOF or a surfaced error), which is what callers expect from a
        // `true` here. An empty revents is a spurious wakeup: re-poll
        // with the remaining budget rather than claiming readability.
        if (pfd.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) {
          return true;
        }
        continue;
      }
      if (rc == 0) return false;
      if (errno == EINTR) {
        // Keep waiting, but only for what's left of the deadline.
        if (timeout_ms >= 0 && RemainingMs(timeout_ms, deadline) == 0) {
          return false;
        }
        continue;
      }
      return true;  // poll itself failed; let Read surface the error
    }
  }

  void Close() override {
    // Shutdown, don't close: Close racing a blocked Read/WaitReadable is
    // the designed way to unwedge them (they resolve to EOF), and keeping
    // the descriptor open until the destructor guarantees its number is
    // not recycled out from under a thread still blocked on it. Safe to
    // call from any thread, any number of times.
    int fd = fd_.load(std::memory_order_relaxed);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }

  int ReleaseFd() override {
    return fd_.exchange(-1, std::memory_order_relaxed);
  }

  std::string PeerName() const override { return peer_; }

 private:
  std::atomic<int> fd_;
  std::string peer_;
};

std::string PeerOf(const sockaddr_storage& addr) {
  char host[NI_MAXHOST] = "?";
  char serv[NI_MAXSERV] = "?";
  ::getnameinfo(reinterpret_cast<const sockaddr*>(&addr), sizeof addr, host,
                sizeof host, serv, sizeof serv,
                NI_NUMERICHOST | NI_NUMERICSERV);
  return std::string(host) + ":" + serv;
}

}  // namespace

void ApplyTcpTuning(int fd, const TcpTuning& tuning) {
  int one = tuning.nodelay ? 1 : 0;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (tuning.rcvbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tuning.rcvbuf,
                 sizeof tuning.rcvbuf);
  }
  if (tuning.sndbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &tuning.sndbuf,
                 sizeof tuning.sndbuf);
  }
}

int CreateTcpListener(uint16_t port, bool reuseport, int backlog,
                      uint16_t* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) FailErrno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (reuseport) {
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
      int saved = errno;
      ::close(fd);
      errno = saved;
      FailErrno("setsockopt SO_REUSEPORT");
    }
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    FailErrno("bind port " + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    FailErrno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    FailErrno("getsockname");
  }
  if (bound_port != nullptr) *bound_port = ntohs(addr.sin_port);
  return fd;
}

std::string TcpPeerName(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof addr;
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return "?:?";
  }
  return PeerOf(addr);
}

namespace {

// connect(2) against one address, optionally bounded by a deadline via a
// non-blocking connect + poll. Returns 0 on success, an errno otherwise.
int ConnectOne(int fd, const sockaddr* addr, socklen_t len, int timeout_ms) {
  if (timeout_ms < 0) {
    if (::connect(fd, addr, len) == 0) return 0;
    if (errno != EINTR) return errno;
    // EINTR does not abort a connect: the handshake continues in the
    // kernel (re-calling connect would spin on EALREADY). Wait for the
    // socket to become writable, then read the verdict from SO_ERROR.
    while (true) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      int ready = ::poll(&pfd, 1, -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return errno;
      }
      if (pfd.revents & (POLLOUT | POLLERR | POLLHUP)) break;
    }
    int err = 0;
    socklen_t err_len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
      return errno;
    }
    return err;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, addr, len);
  int err = 0;
  if (rc != 0) {
    if (errno != EINPROGRESS && errno != EINTR) return errno;
    while (true) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      int ready = ::poll(&pfd, 1, RemainingMs(timeout_ms, deadline));
      if (ready == 0) return ETIMEDOUT;
      if (ready < 0) {
        if (errno == EINTR) {
          if (RemainingMs(timeout_ms, deadline) == 0) return ETIMEDOUT;
          continue;
        }
        return errno;
      }
      // POLLOUT is completion; POLLERR|POLLHUP is refusal — either way
      // SO_ERROR below tells the truth. Anything else (spurious wakeup)
      // goes back to poll with the remaining budget.
      if (pfd.revents & (POLLOUT | POLLERR | POLLHUP)) break;
    }
    socklen_t err_len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
      return errno;
    }
    if (err != 0) return err;
  }
  ::fcntl(fd, F_SETFL, flags);
  return 0;
}

}  // namespace

std::unique_ptr<ByteChannel> TcpConnect(const std::string& host, uint16_t port,
                                        int timeout_ms,
                                        const TcpTuning& tuning) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  std::string service = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &result);
  if (rc != 0) {
    throw NetError("resolve " + host + ": " + ::gai_strerror(rc));
  }
  int fd = -1;
  int last_error = 0;
  bool timed_out = false;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = errno;
      continue;
    }
    int err = ConnectOne(fd, ai->ai_addr, ai->ai_addrlen, timeout_ms);
    if (err == 0) break;
    last_error = err;
    timed_out = err == ETIMEDOUT;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    std::string what = "connect " + host + ":" + service + ": " +
                       (last_error == 0 ? "no addresses"
                                        : std::strerror(last_error));
    if (timed_out) throw TimeoutError(what);
    throw NetError(what);
  }
  ApplyTcpTuning(fd, tuning);
  return std::make_unique<TcpChannel>(fd, host + ":" + service);
}

TcpAcceptor::TcpAcceptor(uint16_t port, const TcpTuning& tuning)
    : tuning_(tuning) {
  // Backlog 1024: connection-scale workloads (bench_connscale) open
  // thousands of sockets in bursts; 64 would shed them as RSTs.
  fd_ = CreateTcpListener(port, /*reuseport=*/false, /*backlog=*/1024,
                          &port_);
}

TcpAcceptor::~TcpAcceptor() {
  Close();
  int fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) ::close(fd);
}

std::unique_ptr<ByteChannel> TcpAcceptor::Accept() {
  while (true) {
    sockaddr_storage addr{};
    socklen_t len = sizeof addr;
    int fd = ::accept(fd_.load(std::memory_order_relaxed),
                      reinterpret_cast<sockaddr*>(&addr), &len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Closed (or any terminal condition): report orderly shutdown.
      return nullptr;
    }
    ApplyTcpTuning(fd, tuning_);
    return std::make_unique<TcpChannel>(fd, PeerOf(addr));
  }
}

void TcpAcceptor::Close() {
  // Shutdown only (see TcpChannel::Close): on Linux this pops a blocked
  // accept() out with EINVAL; the destructor reclaims the descriptor.
  int fd = fd_.load(std::memory_order_relaxed);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace heidi::net
