// In-process ByteChannel pair: two FIFO byte queues with mutex/condvar
// signalling. Used for unit tests, for the "inproc" ORB transport, and to
// benchmark protocol encoding without kernel/socket noise.
#pragma once

#include <memory>
#include <utility>

#include "net/channel.h"

namespace heidi::net {

struct ChannelPair {
  std::unique_ptr<ByteChannel> a;
  std::unique_ptr<ByteChannel> b;
};

// Creates a connected pair: bytes written to `a` are read from `b` and
// vice versa. Closing either end unblocks and EOFs both directions.
ChannelPair CreateInMemoryPair();

}  // namespace heidi::net
