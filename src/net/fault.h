// Fault injection for the transport substrate: a FaultyChannel decorator
// over any ByteChannel plus a faulty acceptor/connector, all driven by a
// seeded, deterministic FaultPlan. The point is to make flaky-network
// behavior *reproducible*: the same plan + seed produces the same fault
// schedule for the same sequence of channel operations, so a CI matrix of
// seeds exercises disconnects, corruption, latency and short reads/writes
// on every push without flaking.
//
// Faults come in two flavors:
//   - scripted triggers ("fail the Nth read"), exact and per-operation
//     deterministic regardless of threading;
//   - probabilistic rates, drawn from per-operation-kind RNG streams
//     derived from the seed (reads and writes usually live on different
//     threads; separate streams keep each op kind's schedule stable).
//
// The injector is shared: one FaultInjector can back many channels (e.g.
// every connection an orb opens), aggregating fault statistics that
// OrbStats reports as `faults_injected`.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <string>

#include "net/channel.h"
#include "net/tcp.h"

namespace heidi::net {

// What to break, how often. Rates are probabilities in [0, 1]; scripted
// `*_at` triggers are 1-based operation ordinals (0 = disabled) counted
// per injector across all channels it backs.
struct FaultPlan {
  uint64_t seed = 1;  // master seed; everything derives from it

  // Probabilistic faults.
  double read_error_rate = 0;     // Read throws NetError (mid-message
                                  // disconnect: the channel is closed)
  double write_error_rate = 0;    // WriteAll writes a prefix, then throws
  double corrupt_rate = 0;        // Read flips one byte of what it returns
  double short_read_rate = 0;     // Read returns at most one byte
  double delay_rate = 0;          // sleep delay_ms before the operation
  double connect_refuse_rate = 0; // connector/acceptor refuses the channel
  int delay_ms = 0;

  // Scripted triggers (exact, threading-independent per op kind).
  uint64_t fail_read_at = 0;      // Nth Read: close + throw NetError
  uint64_t fail_write_at = 0;     // Nth WriteAll: partial write + throw
  uint64_t corrupt_read_at = 0;   // Nth Read: flip its first byte
  uint64_t refuse_connect_at = 0; // Nth connect/accept: throw ConnectError
};

// Aggregated injection counts (monotonic, best-effort).
struct FaultStats {
  uint64_t reads_failed = 0;
  uint64_t writes_failed = 0;
  uint64_t bytes_corrupted = 0;
  uint64_t short_reads = 0;
  uint64_t delays_injected = 0;
  uint64_t connects_refused = 0;

  uint64_t Total() const {
    return reads_failed + writes_failed + bytes_corrupted + short_reads +
           delays_injected + connects_refused;
  }
};

// Shared fault state: the plan, the op counters, and one RNG stream per
// operation kind. Thread-safe; intended to be shared by every channel of
// one logical peer/orb.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& Plan() const { return plan_; }
  FaultStats Stats() const;

  // Called by the connector/acceptor before handing out a channel.
  // Throws ConnectError when the plan refuses this connect.
  void OnConnect();

  // Decisions for FaultyChannel (exposed for tests that script their own
  // channel behavior). Each advances the per-kind counters/streams.
  struct ReadDecision {
    bool fail = false;
    bool corrupt = false;
    bool shorten = false;
    int delay_ms = 0;
  };
  struct WriteDecision {
    bool fail = false;
    int delay_ms = 0;
  };
  ReadDecision OnRead();
  WriteDecision OnWrite();

  // Stat bumps (FaultyChannel reports what it actually did).
  void CountReadFailed();
  void CountWriteFailed();
  void CountCorrupted();
  void CountShortRead();
  void CountDelay();

  // Process-wide notification fired on every injected fault, with the
  // fault kind and the injector's running total. Function-registration
  // (not std::function) so heidi_net never links the observer — the orb
  // layer points this at its flight recorder.
  using TriggerHook = void (*)(const char* kind, uint64_t total);
  static void SetTriggerHook(TriggerHook hook);

 private:
  bool Draw(std::mt19937_64& rng, double rate);

  const FaultPlan plan_;
  mutable std::mutex mutex_;
  std::mt19937_64 read_rng_;
  std::mt19937_64 write_rng_;
  std::mt19937_64 connect_rng_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t connects_ = 0;

  std::atomic<uint64_t> reads_failed_{0};
  std::atomic<uint64_t> writes_failed_{0};
  std::atomic<uint64_t> bytes_corrupted_{0};
  std::atomic<uint64_t> short_reads_{0};
  std::atomic<uint64_t> delays_injected_{0};
  std::atomic<uint64_t> connects_refused_{0};
};

// Decorates `inner` with the injector's fault schedule. An injected read
// or write failure also closes the inner channel — a real mid-message
// disconnect leaves the peer's stream position unknowable, and the layers
// above (BufferedReader, CallMux) must cope with exactly that.
std::unique_ptr<ByteChannel> WrapFaulty(std::unique_ptr<ByteChannel> inner,
                                        std::shared_ptr<FaultInjector> injector);

// Faulty connector: TcpConnect that consults the injector (connect
// refusals) and wraps the result.
std::unique_ptr<ByteChannel> FaultyTcpConnect(
    const std::string& host, uint16_t port,
    std::shared_ptr<FaultInjector> injector, int timeout_ms = -1);

// Faulty acceptor: every accepted channel is wrapped; a refused accept
// closes the inbound connection immediately and waits for the next one.
class FaultyAcceptor {
 public:
  FaultyAcceptor(uint16_t port, std::shared_ptr<FaultInjector> injector);

  // Blocking. Returns nullptr once Close() has been called.
  std::unique_ptr<ByteChannel> Accept();
  void Close();
  uint16_t Port() const { return inner_.Port(); }

 private:
  TcpAcceptor inner_;
  std::shared_ptr<FaultInjector> injector_;
};

}  // namespace heidi::net
