// TCP transport: blocking sockets with TCP_NODELAY (remote-call latency is
// dominated by round trips; Nagle would serialize them).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/channel.h"

namespace heidi::net {

// Connects to host:port (name resolution via getaddrinfo). Throws
// NetError; a non-negative `timeout_ms` bounds each connect attempt and
// throws TimeoutError when the deadline passes first (timeout_ms < 0
// blocks until the kernel gives up).
std::unique_ptr<ByteChannel> TcpConnect(const std::string& host, uint16_t port,
                                        int timeout_ms = -1);

// Listening socket; the bootstrap port of an address space (§3.1 Fig 5).
class TcpAcceptor {
 public:
  // port 0 picks an ephemeral port (see Port()). Binds to all interfaces.
  explicit TcpAcceptor(uint16_t port = 0);
  ~TcpAcceptor();

  TcpAcceptor(const TcpAcceptor&) = delete;
  TcpAcceptor& operator=(const TcpAcceptor&) = delete;

  // Blocking. Returns nullptr once Close() has been called.
  std::unique_ptr<ByteChannel> Accept();

  // Unblocks Accept(); idempotent and safe to call from another thread
  // while Accept() is blocked. The descriptor itself is reclaimed by the
  // destructor, never while a thread could still be blocked on it.
  void Close();

  uint16_t Port() const { return port_; }

 private:
  // Atomic because Close() races with a blocked Accept() by design: that
  // cross-thread close is exactly how an accept loop is shut down.
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

}  // namespace heidi::net
