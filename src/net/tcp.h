// TCP transport: blocking sockets with TCP_NODELAY (remote-call latency is
// dominated by round trips; Nagle would serialize them).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/channel.h"

namespace heidi::net {

// Per-socket TCP knobs, applied to connected and accepted sockets alike.
// rcvbuf/sndbuf of 0 keep the kernel's autotuned defaults; setting them
// pins SO_RCVBUF/SO_SNDBUF (the kernel doubles the value it's given, as
// usual for those options).
struct TcpTuning {
  bool nodelay = true;
  int rcvbuf = 0;
  int sndbuf = 0;
};

// Applies `tuning` to an open socket. Best-effort: setsockopt failures on
// buffer sizing are ignored (the socket still works, just untuned).
void ApplyTcpTuning(int fd, const TcpTuning& tuning);

// Creates a bound, listening IPv4 socket on INADDR_ANY. With `reuseport`,
// SO_REUSEPORT is set before bind so several listeners can share one port
// (the kernel load-balances accepts across them — the reactor's sharded
// accept mode). Writes the bound port (resolving port 0) to *bound_port
// when non-null. Returns the fd; throws NetError on failure.
int CreateTcpListener(uint16_t port, bool reuseport, int backlog,
                      uint16_t* bound_port);

// Numeric host:port of a connected socket's peer ("?" fields on failure).
std::string TcpPeerName(int fd);

// Connects to host:port (name resolution via getaddrinfo). Throws
// NetError; a non-negative `timeout_ms` bounds each connect attempt and
// throws TimeoutError when the deadline passes first (timeout_ms < 0
// blocks until the kernel gives up).
std::unique_ptr<ByteChannel> TcpConnect(const std::string& host, uint16_t port,
                                        int timeout_ms = -1,
                                        const TcpTuning& tuning = {});

// Listening socket; the bootstrap port of an address space (§3.1 Fig 5).
class TcpAcceptor {
 public:
  // port 0 picks an ephemeral port (see Port()). Binds to all interfaces.
  // `tuning` is applied to every accepted socket.
  explicit TcpAcceptor(uint16_t port = 0, const TcpTuning& tuning = {});
  ~TcpAcceptor();

  TcpAcceptor(const TcpAcceptor&) = delete;
  TcpAcceptor& operator=(const TcpAcceptor&) = delete;

  // Blocking. Returns nullptr once Close() has been called.
  std::unique_ptr<ByteChannel> Accept();

  // Unblocks Accept(); idempotent and safe to call from another thread
  // while Accept() is blocked. The descriptor itself is reclaimed by the
  // destructor, never while a thread could still be blocked on it.
  void Close();

  uint16_t Port() const { return port_; }

 private:
  // Atomic because Close() races with a blocked Accept() by design: that
  // cross-thread close is exactly how an accept loop is shut down.
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
  TcpTuning tuning_;
};

}  // namespace heidi::net
