// TCP transport: blocking sockets with TCP_NODELAY (remote-call latency is
// dominated by round trips; Nagle would serialize them).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/channel.h"

namespace heidi::net {

// Connects to host:port (name resolution via getaddrinfo). Throws NetError.
std::unique_ptr<ByteChannel> TcpConnect(const std::string& host,
                                        uint16_t port);

// Listening socket; the bootstrap port of an address space (§3.1 Fig 5).
class TcpAcceptor {
 public:
  // port 0 picks an ephemeral port (see Port()). Binds to all interfaces.
  explicit TcpAcceptor(uint16_t port = 0);
  ~TcpAcceptor();

  TcpAcceptor(const TcpAcceptor&) = delete;
  TcpAcceptor& operator=(const TcpAcceptor&) = delete;

  // Blocking. Returns nullptr once Close() has been called.
  std::unique_ptr<ByteChannel> Accept();

  // Unblocks Accept(); idempotent.
  void Close();

  uint16_t Port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace heidi::net
