#include "net/buffered.h"

#include <cstring>

#include "support/error.h"

namespace heidi::net {

namespace {
constexpr size_t kChunk = 64 * 1024;
}

bool BufferedReader::Fill() {
  if (read_timeout_ms_ >= 0 && !channel_->WaitReadable(read_timeout_ms_)) {
    throw TimeoutError("read timed out after " +
                       std::to_string(read_timeout_ms_) + "ms");
  }
  if (pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  size_t old = buffer_.size();
  buffer_.resize(old + kChunk);
  size_t r = channel_->Read(buffer_.data() + old, kChunk);
  buffer_.resize(old + r);
  return r > 0;
}

bool BufferedReader::ReadLine(std::string& line, size_t max_len) {
  line.clear();
  while (true) {
    size_t nl = buffer_.find('\n', pos_);
    if (nl != std::string::npos) {
      line.append(buffer_, pos_, nl - pos_);
      pos_ = nl + 1;
      if (max_len != 0 && line.size() > max_len) {
        throw NetError("line exceeds the " + std::to_string(max_len) +
                       "-byte cap");
      }
      return true;
    }
    line.append(buffer_, pos_, buffer_.size() - pos_);
    pos_ = buffer_.size();
    if (max_len != 0 && line.size() > max_len) {
      throw NetError("line exceeds the " + std::to_string(max_len) +
                     "-byte cap");
    }
    if (!Fill()) {
      if (line.empty()) return false;
      throw NetError("connection closed mid-line");
    }
  }
}

bool BufferedReader::ReadExact(char* buf, size_t n) {
  size_t got = 0;
  // Drain whatever the line reader / previous frame left buffered.
  size_t available = buffer_.size() - pos_;
  if (available > 0 && n > 0) {
    size_t take = std::min(available, n);
    std::memcpy(buf, buffer_.data() + pos_, take);
    pos_ += take;
    got = take;
  }
  // Read the remainder straight into the caller's buffer: a frame body
  // headed for a pooled slab never takes a detour through buffer_.
  while (got < n) {
    if (read_timeout_ms_ >= 0 && !channel_->WaitReadable(read_timeout_ms_)) {
      throw TimeoutError("read timed out after " +
                         std::to_string(read_timeout_ms_) + "ms");
    }
    size_t r = channel_->Read(buf + got, n - got);
    if (r == 0) {
      if (got == 0) return false;
      throw NetError("connection closed mid-message");
    }
    got += r;
  }
  return true;
}

}  // namespace heidi::net
