// Sharded epoll reactor: the event-loop concurrency policy for serving
// connections (the paper's thesis applied to the comms engine itself —
// the server's threading scheme is swappable policy, not mechanism).
//
// N shards, each one thread running an epoll loop with an eventfd for
// cross-thread wakeups. Every accepted socket is made non-blocking and
// assigned to a shard (round-robin via Adopt(), or kernel-balanced via
// SO_REUSEPORT sharded listeners with ListenReusePort()); from then on
// all of its I/O happens on that shard's loop. Reads land in a pooled
// IncomingBuffer; the owner's `on_data` callback parses frames out of it
// and either handles them inline (oneways) or hands them to a worker
// pool (twoways), pinning the connection with shared_from_this() and
// replying through QueueWrite() from any thread.
//
// Backpressure: each connection carries a write queue with a high-water
// mark. When a peer stops draining replies and the queue crosses it, the
// shard drops the connection's read interest — the client can no longer
// pump requests into a server it refuses to read from — and re-arms it
// once the queue drains below the low-water mark.
//
// Layering: net/ knows nothing about wire/ or obs/. Frame parsing is the
// caller's business (orb installs a wire::FrameDecoder per connection via
// UserState()), and observability attaches through a process-wide event
// hook function pointer (SetEventHook), mirroring FaultInjector's
// trigger hook, so heidi_net never links heidi_obs.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/inbound.h"
#include "net/tcp.h"
#include "support/bytes.h"

namespace heidi::net {

class Reactor;
struct ReactorShard;

struct ReactorOptions {
  // Number of event-loop shards. Shard threads start lazily: a shard's
  // loop spins up the first time a connection (or reuseport listener) is
  // assigned to it, so a mostly-idle orb does not pay for N threads.
  int shards = 1;
  // Write-queue watermarks, bytes. Crossing high suspends read interest;
  // draining below low resumes it.
  size_t write_high_water = 4u << 20;
  size_t write_low_water = 1u << 20;
  // Applied to sockets accepted by reuseport listeners.
  TcpTuning tuning;
  // An iteration of a shard loop (one epoll wakeup: callbacks, parses,
  // inline dispatches) that takes longer than this is counted as a loop
  // stall and reported through the event hook. 0 disables detection.
  int64_t stall_threshold_ns = 100'000'000;
};

// One adopted connection. Lifetime: owned by its shard's fd map while
// registered; worker tasks extend it with shared_from_this() so a late
// reply after teardown degrades to a silent no-op instead of a dangling
// pointer. All methods are thread-safe unless noted.
class ReactorConn : public std::enable_shared_from_this<ReactorConn> {
 public:
  // Loop-thread only: the receive buffer on_data parses from.
  IncomingBuffer& Inbound() { return inbound_; }

  // Loop-thread only: per-connection slot for the owner's protocol state
  // (orb keeps its FrameDecoder here).
  std::shared_ptr<void>& UserState() { return user_state_; }

  const std::string& PeerName() const { return peer_; }
  uint64_t Id() const { return id_; }

  // Queues `chain` for transmission and tries to flush it immediately
  // with a non-blocking sendmsg (the common case: a reply to a draining
  // client leaves on the worker thread without waking the loop). What
  // the kernel won't take is left queued and EPOLLOUT-driven.
  void QueueWrite(bytes::BufferChain chain);

  // Brackets an off-loop dispatch (worker-pool twoway). While dispatches
  // are pending, a peer's EOF does not tear the connection down — the
  // half-close contract: requests already read must still be answered.
  void BeginDispatch() { dispatching_.fetch_add(1, std::memory_order_relaxed); }
  void EndDispatch();

  // Asks the owning shard to close this connection once its write queue
  // has drained. Safe from any thread.
  void RequestClose();

  // True once the peer has shut down its write side (we saw EOF).
  bool ReadClosed() const;

 private:
  friend class Reactor;
  friend struct ReactorShard;

  ReactorConn(ReactorShard* shard, int fd, std::string peer, uint64_t id)
      : shard_(shard), fd_(fd), peer_(std::move(peer)), id_(id) {}

  // All below guarded by mutex_ (fd_ and id_ are immutable; inbound_ and
  // user_state_ are loop-thread-only).
  bool FlushLocked();          // returns false when the socket is dead
  void FailWriteLocked();      // write side died: drop queue, reap soon
  void ResumeReadsIfDrainedLocked();
  void UpdateInterestLocked();
  void MaybeCloseLocked();

  ReactorShard* shard_;
  const int fd_;
  const std::string peer_;
  const uint64_t id_;
  IncomingBuffer inbound_;
  std::shared_ptr<void> user_state_;

  mutable std::mutex mutex_;
  std::deque<bytes::BufferChain> outq_;
  size_t outq_bytes_ = 0;
  size_t front_slice_ = 0;   // resume point inside outq_.front()
  size_t front_offset_ = 0;  // bytes of that slice already sent
  bool registered_ = false;  // present in the shard's epoll set
  bool epollout_armed_ = false;
  bool read_suspended_ = false;
  bool read_closed_ = false;
  bool close_requested_ = false;
  bool closed_ = false;
  std::atomic<int> dispatching_{0};
};

struct ReactorStats {
  uint64_t connections_adopted = 0;
  uint64_t connections_closed = 0;
  uint64_t epoll_wakeups = 0;
  uint64_t eventfd_wakeups = 0;
  uint64_t backpressure_suspends = 0;
  uint64_t backpressure_resumes = 0;
  uint64_t loop_stalls = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

class Reactor {
 public:
  struct Handlers {
    // Called on the owning loop thread after bytes landed in
    // conn.Inbound() (and once after EOF, with ReadClosed() true, so a
    // final unterminated frame can be diagnosed). Return false to kill
    // the connection immediately (protocol error).
    std::function<bool(ReactorConn&)> on_data;
  };

  Reactor(const ReactorOptions& options, Handlers handlers);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Takes ownership of a connected socket and assigns it round-robin to
  // a shard. The fd is switched to non-blocking here. Safe from any
  // thread (the accept thread calls this).
  void Adopt(int fd, std::string peer);

  // Sharded accept: every shard gets its own SO_REUSEPORT listener bound
  // to `port` (0 = ephemeral; all shards share the resolved port) and
  // accepts directly on its loop — no accept thread, no cross-thread
  // handoff. Returns the bound port. Starts every shard eagerly.
  uint16_t ListenReusePort(uint16_t port);

  // Closes every connection and listener, joins all shard threads.
  // Idempotent. Worker tasks still holding ReactorConn references after
  // this see closed connections and drop their replies silently.
  void Stop();

  ReactorStats Stats() const;
  std::vector<uint64_t> ConnectionsPerShard() const;
  uint64_t ConnectionCount() const;
  int ShardCount() const { return static_cast<int>(shards_.size()); }

  // Process-wide observability hook (see file comment). a/b are
  // event-specific payloads; shard is the shard index.
  enum class Event {
    kBackpressureSuspend,  // a = queued bytes
    kBackpressureResume,   // a = queued bytes
    kLoopStall,            // a = iteration wall time, ns
  };
  using EventHook = void (*)(Event event, uint64_t a, int shard);
  static void SetEventHook(EventHook hook);

 private:
  friend class ReactorConn;
  friend struct ReactorShard;

  ReactorShard& PickShard();
  void StartShardLocked(ReactorShard& shard);

  ReactorOptions options_;
  Handlers handlers_;
  std::vector<std::unique_ptr<ReactorShard>> shards_;
  std::atomic<uint64_t> next_shard_{0};
  std::atomic<uint64_t> next_conn_id_{1};
  std::mutex start_mutex_;  // guards lazy shard-thread starts and Stop
  bool stopped_ = false;
};

}  // namespace heidi::net
