// Buffered reader over a ByteChannel: line reads for the text protocol,
// exact-length reads for binary framing, one read buffer per connection.
#pragma once

#include <string>

#include "net/channel.h"

namespace heidi::net {

class BufferedReader {
 public:
  explicit BufferedReader(ByteChannel& channel) : channel_(&channel) {}

  // Reads up to and including '\n'; the newline is stripped from `line`.
  // Returns false on clean EOF before any byte of a new line; throws
  // NetError if EOF interrupts a partial line, or once a line exceeds
  // `max_len` bytes (0 = unlimited) — a corrupted or hostile stream must
  // not buffer unboundedly while hunting for a newline.
  bool ReadLine(std::string& line, size_t max_len = 0);

  // Reads exactly n bytes. Returns false on clean EOF at a message
  // boundary; throws NetError mid-message.
  bool ReadExact(char* buf, size_t n);

  // Bounds every subsequent refill of the buffer: if the channel stays
  // unreadable for `timeout_ms`, the pending ReadLine/ReadExact throws
  // TimeoutError. The deadline applies per refill, not per message.
  // timeout_ms < 0 (the default) restores plain blocking reads.
  void SetReadTimeout(int timeout_ms) { read_timeout_ms_ = timeout_ms; }
  int ReadTimeout() const { return read_timeout_ms_; }

  // True if buffered bytes can satisfy a read without touching the
  // channel (the demux thread polls this before parking in WaitReadable).
  bool HasBuffered() const { return pos_ < buffer_.size(); }

 private:
  // Refills the buffer; returns false on EOF. Honors the read timeout.
  bool Fill();

  ByteChannel* channel_;
  std::string buffer_;
  size_t pos_ = 0;
  int read_timeout_ms_ = -1;
};

}  // namespace heidi::net
