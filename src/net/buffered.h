// Buffered reader over a ByteChannel: line reads for the text protocol,
// exact-length reads for binary framing, one read buffer per connection.
#pragma once

#include <string>

#include "net/channel.h"

namespace heidi::net {

class BufferedReader {
 public:
  explicit BufferedReader(ByteChannel& channel) : channel_(&channel) {}

  // Reads up to and including '\n'; the newline is stripped from `line`.
  // Returns false on clean EOF before any byte of a new line; throws
  // NetError if EOF interrupts a partial line.
  bool ReadLine(std::string& line);

  // Reads exactly n bytes. Returns false on clean EOF at a message
  // boundary; throws NetError mid-message.
  bool ReadExact(char* buf, size_t n);

 private:
  // Refills the buffer; returns false on EOF.
  bool Fill();

  ByteChannel* channel_;
  std::string buffer_;
  size_t pos_ = 0;
};

}  // namespace heidi::net
