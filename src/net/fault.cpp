#include "net/fault.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "support/bytes.h"
#include "support/error.h"

namespace heidi::net {

namespace {

// Per-operation-kind stream tags folded into the master seed so read,
// write and connect schedules advance independently of each other's
// thread interleaving.
constexpr uint64_t kReadStream = 0x9E3779B97F4A7C15ull;
constexpr uint64_t kWriteStream = 0xC2B2AE3D27D4EB4Full;
constexpr uint64_t kConnectStream = 0x165667B19E3779F9ull;

std::atomic<FaultInjector::TriggerHook> g_trigger_hook{nullptr};

void FireTrigger(const char* kind, uint64_t total) {
  if (FaultInjector::TriggerHook hook =
          g_trigger_hook.load(std::memory_order_relaxed)) {
    hook(kind, total);
  }
}

}  // namespace

void FaultInjector::SetTriggerHook(TriggerHook hook) {
  g_trigger_hook.store(hook, std::memory_order_relaxed);
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(plan),
      read_rng_(plan.seed ^ kReadStream),
      write_rng_(plan.seed ^ kWriteStream),
      connect_rng_(plan.seed ^ kConnectStream) {}

bool FaultInjector::Draw(std::mt19937_64& rng, double rate) {
  if (rate <= 0) return false;
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < rate;
}

FaultStats FaultInjector::Stats() const {
  FaultStats stats;
  stats.reads_failed = reads_failed_.load(std::memory_order_relaxed);
  stats.writes_failed = writes_failed_.load(std::memory_order_relaxed);
  stats.bytes_corrupted = bytes_corrupted_.load(std::memory_order_relaxed);
  stats.short_reads = short_reads_.load(std::memory_order_relaxed);
  stats.delays_injected = delays_injected_.load(std::memory_order_relaxed);
  stats.connects_refused = connects_refused_.load(std::memory_order_relaxed);
  return stats;
}

void FaultInjector::OnConnect() {
  bool refuse;
  {
    std::lock_guard lock(mutex_);
    ++connects_;
    refuse = (plan_.refuse_connect_at != 0 &&
              connects_ == plan_.refuse_connect_at) ||
             Draw(connect_rng_, plan_.connect_refuse_rate);
  }
  if (refuse) {
    FireTrigger("connect_refused",
                connects_refused_.fetch_add(1, std::memory_order_relaxed) + 1);
    throw ConnectError("injected connect refusal");
  }
}

FaultInjector::ReadDecision FaultInjector::OnRead() {
  ReadDecision d;
  std::lock_guard lock(mutex_);
  ++reads_;
  d.fail = (plan_.fail_read_at != 0 && reads_ == plan_.fail_read_at) ||
           Draw(read_rng_, plan_.read_error_rate);
  d.corrupt = (plan_.corrupt_read_at != 0 && reads_ == plan_.corrupt_read_at) ||
              Draw(read_rng_, plan_.corrupt_rate);
  d.shorten = Draw(read_rng_, plan_.short_read_rate);
  if (plan_.delay_ms > 0 && Draw(read_rng_, plan_.delay_rate)) {
    d.delay_ms = plan_.delay_ms;
  }
  return d;
}

FaultInjector::WriteDecision FaultInjector::OnWrite() {
  WriteDecision d;
  std::lock_guard lock(mutex_);
  ++writes_;
  d.fail = (plan_.fail_write_at != 0 && writes_ == plan_.fail_write_at) ||
           Draw(write_rng_, plan_.write_error_rate);
  if (plan_.delay_ms > 0 && Draw(write_rng_, plan_.delay_rate)) {
    d.delay_ms = plan_.delay_ms;
  }
  return d;
}

void FaultInjector::CountReadFailed() {
  FireTrigger("read_failed",
              reads_failed_.fetch_add(1, std::memory_order_relaxed) + 1);
}
void FaultInjector::CountWriteFailed() {
  FireTrigger("write_failed",
              writes_failed_.fetch_add(1, std::memory_order_relaxed) + 1);
}
void FaultInjector::CountCorrupted() {
  FireTrigger("corrupted",
              bytes_corrupted_.fetch_add(1, std::memory_order_relaxed) + 1);
}
void FaultInjector::CountShortRead() {
  FireTrigger("short_read",
              short_reads_.fetch_add(1, std::memory_order_relaxed) + 1);
}
void FaultInjector::CountDelay() {
  FireTrigger("delay",
              delays_injected_.fetch_add(1, std::memory_order_relaxed) + 1);
}

namespace {

class FaultyChannel : public ByteChannel {
 public:
  FaultyChannel(std::unique_ptr<ByteChannel> inner,
                std::shared_ptr<FaultInjector> injector)
      : inner_(std::move(inner)), injector_(std::move(injector)) {}

  size_t Read(char* buf, size_t n) override {
    FaultInjector::ReadDecision d = injector_->OnRead();
    if (d.delay_ms > 0) {
      injector_->CountDelay();
      std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
    }
    if (d.fail) {
      injector_->CountReadFailed();
      inner_->Close();  // a real disconnect kills both directions
      throw NetError("injected read failure (mid-message disconnect) on " +
                     inner_->PeerName());
    }
    size_t want = d.shorten ? std::min<size_t>(n, 1) : n;
    if (d.shorten) injector_->CountShortRead();
    size_t got = inner_->Read(buf, want);
    if (d.corrupt && got > 0) {
      injector_->CountCorrupted();
      buf[0] = static_cast<char>(buf[0] ^ 0x20);
    }
    return got;
  }

  void WriteAll(const char* data, size_t n) override {
    FaultInjector::WriteDecision d = injector_->OnWrite();
    if (d.delay_ms > 0) {
      injector_->CountDelay();
      std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
    }
    if (d.fail) {
      injector_->CountWriteFailed();
      // A mid-message disconnect leaves a prefix of the frame on the
      // wire: write half, then die. This is the *indeterminate* failure
      // the retry policy's idempotency gate exists for.
      size_t prefix = n / 2;
      if (prefix > 0) {
        try {
          inner_->WriteAll(data, prefix);
        } catch (const NetError&) {
          // The channel beat us to dying; the injected fault still wins.
        }
      }
      inner_->Close();
      throw NetError("injected write failure (mid-message disconnect) on " +
                     inner_->PeerName());
    }
    inner_->WriteAll(data, n);
  }

  void WritevAll(const bytes::BufferChain& chain) override {
    // One frame = one fault decision, exactly as WriteAll: a gathered
    // write is still a single logical operation against the plan, so a
    // scripted "fail the Nth write" fires identically whether the frame
    // was flattened or chained.
    FaultInjector::WriteDecision d = injector_->OnWrite();
    if (d.delay_ms > 0) {
      injector_->CountDelay();
      std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
    }
    if (d.fail) {
      injector_->CountWriteFailed();
      // Half the frame reaches the wire, slice by slice (no flattening),
      // then the connection dies mid-message.
      size_t remaining = chain.Size() / 2;
      for (const bytes::BufSlice& slice : chain.Slices()) {
        if (remaining == 0) break;
        size_t n = std::min<size_t>(slice.length, remaining);
        try {
          inner_->WriteAll(slice.Data(), n);
        } catch (const NetError&) {
          break;  // the channel beat us to dying; the fault still wins
        }
        remaining -= n;
      }
      inner_->Close();
      throw NetError("injected write failure (mid-message disconnect) on " +
                     inner_->PeerName());
    }
    inner_->WritevAll(chain);
  }

  bool WaitReadable(int timeout_ms) override {
    return inner_->WaitReadable(timeout_ms);
  }

  void Close() override { inner_->Close(); }

  std::string PeerName() const override {
    return "faulty+" + inner_->PeerName();
  }

 private:
  std::unique_ptr<ByteChannel> inner_;
  std::shared_ptr<FaultInjector> injector_;
};

}  // namespace

std::unique_ptr<ByteChannel> WrapFaulty(
    std::unique_ptr<ByteChannel> inner,
    std::shared_ptr<FaultInjector> injector) {
  if (injector == nullptr) return inner;
  return std::make_unique<FaultyChannel>(std::move(inner),
                                         std::move(injector));
}

std::unique_ptr<ByteChannel> FaultyTcpConnect(
    const std::string& host, uint16_t port,
    std::shared_ptr<FaultInjector> injector, int timeout_ms) {
  if (injector == nullptr) return TcpConnect(host, port, timeout_ms);
  injector->OnConnect();  // throws ConnectError when the plan refuses
  return WrapFaulty(TcpConnect(host, port, timeout_ms), std::move(injector));
}

FaultyAcceptor::FaultyAcceptor(uint16_t port,
                               std::shared_ptr<FaultInjector> injector)
    : inner_(port), injector_(std::move(injector)) {}

std::unique_ptr<ByteChannel> FaultyAcceptor::Accept() {
  while (true) {
    std::unique_ptr<ByteChannel> channel = inner_.Accept();
    if (channel == nullptr) return nullptr;
    if (injector_ == nullptr) return channel;
    try {
      injector_->OnConnect();
    } catch (const NetError&) {
      channel->Close();  // refused: drop this one, keep accepting
      continue;
    }
    return WrapFaulty(std::move(channel), injector_);
  }
}

void FaultyAcceptor::Close() { inner_.Close(); }

}  // namespace heidi::net
