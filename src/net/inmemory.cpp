#include "net/inmemory.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "support/bytes.h"
#include "support/error.h"

namespace heidi::net {

namespace {

// One direction of flow. Writers append, readers consume; closing wakes
// everyone and makes reads return EOF once drained.
struct Pipe {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<char> data;
  bool closed = false;

  void Write(const char* buf, size_t n) {
    std::lock_guard lock(mutex);
    if (closed) throw NetError("write on closed in-memory channel");
    data.insert(data.end(), buf, buf + n);
    cv.notify_all();
  }

  // Gathers a whole chain under one lock, so the frame lands atomically
  // even against concurrent writers (mirrors a single Write call).
  void WriteChain(const bytes::BufferChain& chain) {
    std::lock_guard lock(mutex);
    if (closed) throw NetError("write on closed in-memory channel");
    for (const bytes::BufSlice& slice : chain.Slices()) {
      data.insert(data.end(), slice.Data(), slice.Data() + slice.length);
    }
    cv.notify_all();
  }

  size_t Read(char* buf, size_t n) {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return !data.empty() || closed; });
    if (data.empty()) return 0;  // closed and drained
    size_t take = std::min(n, data.size());
    for (size_t i = 0; i < take; ++i) {
      buf[i] = data.front();
      data.pop_front();
    }
    return take;
  }

  bool WaitReadable(int timeout_ms) {
    std::unique_lock lock(mutex);
    auto ready = [&] { return !data.empty() || closed; };
    if (timeout_ms < 0) {
      cv.wait(lock, ready);
      return true;
    }
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready);
  }

  void Close() {
    std::lock_guard lock(mutex);
    closed = true;
    cv.notify_all();
  }
};

class InMemoryChannel : public ByteChannel {
 public:
  InMemoryChannel(std::shared_ptr<Pipe> in, std::shared_ptr<Pipe> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  ~InMemoryChannel() override { Close(); }

  size_t Read(char* buf, size_t n) override { return in_->Read(buf, n); }

  bool WaitReadable(int timeout_ms) override {
    return in_->WaitReadable(timeout_ms);
  }

  void WriteAll(const char* data, size_t n) override { out_->Write(data, n); }

  void WritevAll(const bytes::BufferChain& chain) override {
    out_->WriteChain(chain);
  }

  void Close() override {
    // Close both directions: the peer's reads EOF and our own pending
    // reads unblock.
    in_->Close();
    out_->Close();
  }

  std::string PeerName() const override { return "inmemory"; }

 private:
  std::shared_ptr<Pipe> in_;
  std::shared_ptr<Pipe> out_;
};

}  // namespace

ChannelPair CreateInMemoryPair() {
  auto ab = std::make_shared<Pipe>();
  auto ba = std::make_shared<Pipe>();
  ChannelPair pair;
  pair.a = std::make_unique<InMemoryChannel>(ba, ab);
  pair.b = std::make_unique<InMemoryChannel>(ab, ba);
  return pair;
}

}  // namespace heidi::net
