#include "net/reactor.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_map>

#include "support/error.h"

namespace heidi::net {

namespace {

std::atomic<Reactor::EventHook> g_event_hook{nullptr};

void EmitEvent(Reactor::Event event, uint64_t a, int shard) {
  Reactor::EventHook hook = g_event_hook.load(std::memory_order_acquire);
  if (hook != nullptr) hook(event, a, shard);
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int64_t MonotonicNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void Reactor::SetEventHook(EventHook hook) {
  g_event_hook.store(hook, std::memory_order_release);
}

// One event-loop shard: an epoll set, an eventfd for cross-thread kicks,
// an optional SO_REUSEPORT listener, and the connections it owns. The
// loop thread is the only toucher of `conns` and of each connection's
// Inbound()/UserState(); everything else synchronizes through the
// per-connection mutex or the ops queue.
struct ReactorShard {
  Reactor* reactor = nullptr;
  int index = 0;
  int epfd = -1;
  int efd = -1;
  int listener = -1;
  std::thread thread;
  bool started = false;  // guarded by reactor->start_mutex_
  std::atomic<bool> stop{false};

  std::mutex ops_mutex;
  std::vector<std::function<void()>> ops;

  std::unordered_map<int, std::shared_ptr<ReactorConn>> conns;

  std::atomic<uint64_t> live{0};
  std::atomic<uint64_t> adopted{0};
  std::atomic<uint64_t> closed{0};
  std::atomic<uint64_t> wakeups{0};
  std::atomic<uint64_t> efd_wakeups{0};
  std::atomic<uint64_t> suspends{0};
  std::atomic<uint64_t> resumes{0};
  std::atomic<uint64_t> stalls{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};

  ~ReactorShard() {
    if (listener >= 0) ::close(listener);
    if (efd >= 0) ::close(efd);
    if (epfd >= 0) ::close(epfd);
  }

  void Kick() {
    uint64_t one = 1;
    ssize_t ignored = ::write(efd, &one, sizeof one);
    (void)ignored;
  }

  void PostOp(std::function<void()> op) {
    {
      std::lock_guard<std::mutex> lock(ops_mutex);
      ops.push_back(std::move(op));
    }
    Kick();
  }

  void RunOps() {
    std::vector<std::function<void()>> batch;
    {
      std::lock_guard<std::mutex> lock(ops_mutex);
      batch.swap(ops);
    }
    for (auto& op : batch) op();
  }

  void Register(const std::shared_ptr<ReactorConn>& conn) {
    if (stop.load(std::memory_order_relaxed)) {
      ::close(conn->fd_);
      return;
    }
    conns[conn->fd_] = conn;
    live.fetch_add(1, std::memory_order_relaxed);
    adopted.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn->mutex_);
    conn->registered_ = false;
    conn->UpdateInterestLocked();
  }

  void RegisterListener() {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listener;
    ::epoll_ctl(epfd, EPOLL_CTL_ADD, listener, &ev);
  }

  void CloseConn(const std::shared_ptr<ReactorConn>& conn) {
    {
      std::lock_guard<std::mutex> lock(conn->mutex_);
      if (conn->closed_) return;
      conn->closed_ = true;
      conn->outq_.clear();
      conn->outq_bytes_ = 0;
      if (conn->registered_) {
        ::epoll_ctl(epfd, EPOLL_CTL_DEL, conn->fd_, nullptr);
        conn->registered_ = false;
      }
    }
    // No worker can be inside a send now: FlushLocked runs under the
    // mutex and re-checks closed_, so the descriptor is ours to reclaim.
    ::close(conn->fd_);
    conns.erase(conn->fd_);
    live.fetch_sub(1, std::memory_order_relaxed);
    closed.fetch_add(1, std::memory_order_relaxed);
  }

  void AcceptBurst() {
    while (true) {
      sockaddr_storage addr{};
      socklen_t len = sizeof addr;
      int cfd = ::accept4(listener, reinterpret_cast<sockaddr*>(&addr),
                          &len, SOCK_NONBLOCK);
      if (cfd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN (drained) or listener closed
      }
      ApplyTcpTuning(cfd, reactor->options_.tuning);
      std::shared_ptr<ReactorConn> conn(new ReactorConn(
          this, cfd, TcpPeerName(cfd),
          reactor->next_conn_id_.fetch_add(1, std::memory_order_relaxed)));
      Register(conn);
    }
  }

  void ReadReady(const std::shared_ptr<ReactorConn>& conn) {
    {
      std::lock_guard<std::mutex> lock(conn->mutex_);
      if (conn->closed_ || conn->read_closed_) {
        // EPOLLHUP can keep firing after EOF while dispatches drain;
        // there is nothing further to read.
        conn->MaybeCloseLocked();
        return;
      }
    }
    while (true) {
      char* dst = conn->inbound_.WritePtr(/*min_space=*/1024);
      ssize_t r = ::recv(conn->fd_, dst, conn->inbound_.WriteCapacity(), 0);
      if (r > 0) {
        conn->inbound_.CommitWrite(static_cast<size_t>(r));
        bytes_read.fetch_add(static_cast<uint64_t>(r),
                             std::memory_order_relaxed);
        if (!reactor->handlers_.on_data(*conn)) {
          CloseConn(conn);
        }
        return;  // level-triggered: epoll re-reports leftover bytes
      }
      if (r == 0) {
        // Peer half-closed. Frames already read must still be answered
        // (dispatches pending, queued replies draining) — the teardown
        // waits for them in MaybeCloseLocked.
        {
          std::lock_guard<std::mutex> lock(conn->mutex_);
          conn->read_closed_ = true;
          conn->UpdateInterestLocked();
        }
        // One final parse pass so the owner can diagnose a truncated
        // trailing frame (on_data sees ReadClosed() == true).
        if (!reactor->handlers_.on_data(*conn)) {
          CloseConn(conn);
          return;
        }
        std::lock_guard<std::mutex> lock(conn->mutex_);
        conn->MaybeCloseLocked();
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      CloseConn(conn);  // ECONNRESET and friends
      return;
    }
  }

  void HandleConnEvent(const std::shared_ptr<ReactorConn>& conn,
                       uint32_t events) {
    if (events & EPOLLERR) {
      CloseConn(conn);
      return;
    }
    if (events & EPOLLOUT) {
      bool dead = false;
      {
        std::lock_guard<std::mutex> lock(conn->mutex_);
        if (!conn->closed_ && !conn->FlushLocked()) {
          conn->FailWriteLocked();
          dead = conn->dispatching_.load(std::memory_order_acquire) == 0;
        }
      }
      if (dead) {
        CloseConn(conn);
        return;
      }
    }
    if (events & (EPOLLIN | EPOLLHUP)) ReadReady(conn);
  }

  void CloseAll() {
    std::vector<std::shared_ptr<ReactorConn>> all;
    all.reserve(conns.size());
    for (auto& entry : conns) all.push_back(entry.second);
    for (auto& conn : all) CloseConn(conn);
    if (listener >= 0) {
      ::epoll_ctl(epfd, EPOLL_CTL_DEL, listener, nullptr);
      ::close(listener);
      listener = -1;
    }
  }

  void Loop() {
    constexpr int kMaxEvents = 128;
    epoll_event events[kMaxEvents];
    const int64_t stall_ns = reactor->options_.stall_threshold_ns;
    while (true) {
      int n = ::epoll_wait(epfd, events, kMaxEvents, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // epoll set itself is broken; nothing sane to do
      }
      wakeups.fetch_add(1, std::memory_order_relaxed);
      int64_t t0 = stall_ns > 0 ? MonotonicNs() : 0;
      for (int i = 0; i < n; ++i) {
        int fd = events[i].data.fd;
        if (fd == efd) {
          uint64_t drained = 0;
          ssize_t ignored = ::read(efd, &drained, sizeof drained);
          (void)ignored;
          efd_wakeups.fetch_add(1, std::memory_order_relaxed);
          RunOps();
        } else if (fd == listener) {
          AcceptBurst();
        } else {
          auto it = conns.find(fd);
          if (it != conns.end()) HandleConnEvent(it->second, events[i].events);
        }
      }
      if (stop.load(std::memory_order_acquire)) {
        CloseAll();
        RunOps();  // stragglers queued during teardown self-destruct
        break;
      }
      if (stall_ns > 0) {
        int64_t took = MonotonicNs() - t0;
        if (took > stall_ns) {
          stalls.fetch_add(1, std::memory_order_relaxed);
          EmitEvent(Reactor::Event::kLoopStall,
                    static_cast<uint64_t>(took), index);
        }
      }
    }
  }
};

// --- ReactorConn ----------------------------------------------------------

void ReactorConn::QueueWrite(bytes::BufferChain chain) {
  if (chain.Empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_ || close_requested_) return;
  outq_bytes_ += chain.Size();
  outq_.push_back(std::move(chain));
  if (!FlushLocked()) {
    FailWriteLocked();
    return;
  }
  if (!read_suspended_ && !read_closed_ &&
      outq_bytes_ > shard_->reactor->options_.write_high_water) {
    read_suspended_ = true;
    UpdateInterestLocked();
    shard_->suspends.fetch_add(1, std::memory_order_relaxed);
    EmitEvent(Reactor::Event::kBackpressureSuspend, outq_bytes_,
              shard_->index);
  }
}

void ReactorConn::EndDispatch() {
  if (dispatching_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    MaybeCloseLocked();
  }
}

void ReactorConn::RequestClose() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  close_requested_ = true;
  MaybeCloseLocked();
}

bool ReactorConn::ReadClosed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return read_closed_;
}

bool ReactorConn::FlushLocked() {
  constexpr size_t kIovBatch = 64;
  while (!outq_.empty()) {
    const std::vector<bytes::BufSlice>& slices = outq_.front().Slices();
    iovec iov[kIovBatch];
    size_t iov_count = 0;
    for (size_t i = front_slice_;
         i < slices.size() && iov_count < kIovBatch; ++i) {
      size_t skip = i == front_slice_ ? front_offset_ : 0;
      iov[iov_count].iov_base = const_cast<char*>(slices[i].Data() + skip);
      iov[iov_count].iov_len = slices[i].length - skip;
      ++iov_count;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iov_count;
    ssize_t w = ::sendmsg(fd_, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!epollout_armed_) {
          epollout_armed_ = true;
          UpdateInterestLocked();
        }
        ResumeReadsIfDrainedLocked();
        return true;
      }
      return false;  // EPIPE/ECONNRESET: the write side is gone
    }
    shard_->bytes_written.fetch_add(static_cast<uint64_t>(w),
                                    std::memory_order_relaxed);
    outq_bytes_ -= static_cast<size_t>(w);
    size_t sent = static_cast<size_t>(w);
    while (sent > 0) {
      size_t left = slices[front_slice_].length - front_offset_;
      if (sent < left) {
        front_offset_ += sent;
        sent = 0;
      } else {
        sent -= left;
        ++front_slice_;
        front_offset_ = 0;
      }
    }
    if (front_slice_ == slices.size()) {
      outq_.pop_front();
      front_slice_ = 0;
      front_offset_ = 0;
    }
  }
  if (epollout_armed_) {
    epollout_armed_ = false;
    UpdateInterestLocked();
  }
  ResumeReadsIfDrainedLocked();
  MaybeCloseLocked();
  return true;
}

void ReactorConn::FailWriteLocked() {
  // The peer reset or closed its read side: queued replies can never be
  // delivered. Drop them and let the loop reap the connection (now, or
  // after in-flight dispatches finish).
  outq_.clear();
  outq_bytes_ = 0;
  front_slice_ = 0;
  front_offset_ = 0;
  close_requested_ = true;
  MaybeCloseLocked();
}

void ReactorConn::ResumeReadsIfDrainedLocked() {
  if (read_suspended_ &&
      outq_bytes_ <= shard_->reactor->options_.write_low_water) {
    read_suspended_ = false;
    UpdateInterestLocked();
    shard_->resumes.fetch_add(1, std::memory_order_relaxed);
    EmitEvent(Reactor::Event::kBackpressureResume, outq_bytes_,
              shard_->index);
  }
}

void ReactorConn::UpdateInterestLocked() {
  uint32_t mask = 0;
  if (!read_suspended_ && !read_closed_) mask |= EPOLLIN;
  if (epollout_armed_) mask |= EPOLLOUT;
  if (mask == 0) {
    // Nothing to monitor. Removing the fd (instead of MOD to an empty
    // set) silences the EPOLLHUP storm a fully-closed peer would
    // otherwise feed a level-triggered loop.
    if (registered_) {
      ::epoll_ctl(shard_->epfd, EPOLL_CTL_DEL, fd_, nullptr);
      registered_ = false;
    }
    return;
  }
  epoll_event ev{};
  ev.events = mask;
  ev.data.fd = fd_;
  ::epoll_ctl(shard_->epfd, registered_ ? EPOLL_CTL_MOD : EPOLL_CTL_ADD,
              fd_, &ev);
  registered_ = true;
}

void ReactorConn::MaybeCloseLocked() {
  if (closed_) return;
  if (!read_closed_ && !close_requested_) return;
  if (dispatching_.load(std::memory_order_acquire) != 0) return;
  if (!outq_.empty()) return;
  // Teardown must happen on the loop thread (it owns the fd map); this
  // may run on a worker, so route through the ops queue. CloseConn is
  // idempotent, duplicate posts are harmless.
  ReactorShard* shard = shard_;
  std::shared_ptr<ReactorConn> self = shared_from_this();
  shard->PostOp([shard, self] { shard->CloseConn(self); });
}

// --- Reactor --------------------------------------------------------------

Reactor::Reactor(const ReactorOptions& options, Handlers handlers)
    : options_(options), handlers_(std::move(handlers)) {
  int count = options_.shards > 0 ? options_.shards : 1;
  if (options_.write_low_water >= options_.write_high_water) {
    options_.write_low_water = options_.write_high_water / 4;
  }
  shards_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto shard = std::make_unique<ReactorShard>();
    shard->reactor = this;
    shard->index = i;
    shard->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (shard->epfd < 0) throw NetError("epoll_create1 failed");
    shard->efd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (shard->efd < 0) throw NetError("eventfd failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = shard->efd;
    ::epoll_ctl(shard->epfd, EPOLL_CTL_ADD, shard->efd, &ev);
    shards_.push_back(std::move(shard));
  }
}

Reactor::~Reactor() { Stop(); }

ReactorShard& Reactor::PickShard() {
  uint64_t n = next_shard_.fetch_add(1, std::memory_order_relaxed);
  ReactorShard& shard = *shards_[n % shards_.size()];
  StartShardLocked(shard);
  return shard;
}

void Reactor::StartShardLocked(ReactorShard& shard) {
  if (shard.started) return;
  shard.started = true;
  shard.thread = std::thread([&shard] { shard.Loop(); });
}

void Reactor::Adopt(int fd, std::string peer) {
  std::lock_guard<std::mutex> lock(start_mutex_);
  if (stopped_) {
    ::close(fd);
    return;
  }
  SetNonBlocking(fd);
  ReactorShard& shard = PickShard();
  std::shared_ptr<ReactorConn> conn(new ReactorConn(
      &shard, fd, std::move(peer),
      next_conn_id_.fetch_add(1, std::memory_order_relaxed)));
  shard.PostOp([&shard, conn] { shard.Register(conn); });
}

uint16_t Reactor::ListenReusePort(uint16_t port) {
  std::lock_guard<std::mutex> lock(start_mutex_);
  if (stopped_) throw NetError("reactor already stopped");
  uint16_t bound = port;
  for (auto& shard : shards_) {
    shard->listener = CreateTcpListener(bound, /*reuseport=*/true,
                                        /*backlog=*/1024, &bound);
    SetNonBlocking(shard->listener);
    StartShardLocked(*shard);
    ReactorShard* raw = shard.get();
    raw->PostOp([raw] { raw->RegisterListener(); });
  }
  return bound;
}

void Reactor::Stop() {
  std::lock_guard<std::mutex> lock(start_mutex_);
  if (stopped_) return;
  stopped_ = true;
  for (auto& shard : shards_) {
    if (shard->started) {
      shard->stop.store(true, std::memory_order_release);
      shard->Kick();
    }
  }
  for (auto& shard : shards_) {
    if (shard->started && shard->thread.joinable()) shard->thread.join();
  }
}

ReactorStats Reactor::Stats() const {
  ReactorStats stats;
  for (const auto& shard : shards_) {
    stats.connections_adopted += shard->adopted.load();
    stats.connections_closed += shard->closed.load();
    stats.epoll_wakeups += shard->wakeups.load();
    stats.eventfd_wakeups += shard->efd_wakeups.load();
    stats.backpressure_suspends += shard->suspends.load();
    stats.backpressure_resumes += shard->resumes.load();
    stats.loop_stalls += shard->stalls.load();
    stats.bytes_read += shard->bytes_read.load();
    stats.bytes_written += shard->bytes_written.load();
  }
  return stats;
}

std::vector<uint64_t> Reactor::ConnectionsPerShard() const {
  std::vector<uint64_t> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) per_shard.push_back(shard->live.load());
  return per_shard;
}

uint64_t Reactor::ConnectionCount() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->live.load();
  return total;
}

}  // namespace heidi::net
