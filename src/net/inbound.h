// IncomingBuffer: the receive side of a readiness-driven connection.
//
// A reactor connection cannot block in ReadExact; bytes arrive whenever
// epoll says so, in whatever fragments the peer and the kernel produce.
// This buffer accumulates them in ONE pooled IoBuf slab with a strong
// invariant: all unparsed bytes are contiguous, starting at Pos() within
// the slab. Frame decoders (wire::FrameDecoder) parse straight out of
// the slab — for binary protocols the parsed Call is a *view* into the
// very slab the kernel wrote into, so the zero-copy story of the
// blocking path carries over unchanged.
//
// Growth: when a frame outgrows the current slab's free tail, the
// unparsed bytes roll into a bigger pooled slab. Decoders that need N
// contiguous bytes call Reserve(N) (exact, for length-prefixed frames)
// or Reserve(2 * Available()) (doubling, for delimiter-scanned frames),
// keeping total copying amortized O(n) even for a 64 MiB frame drip-fed
// one byte at a time (the slow-loris case).
#pragma once

#include <cstddef>
#include <cstring>
#include <string_view>
#include <utility>

#include "support/bytes.h"

namespace heidi::net {

class IncomingBuffer {
 public:
  explicit IncomingBuffer(bytes::IoBufPool* pool = nullptr)
      : pool_(pool != nullptr ? pool : &bytes::IoBufPool::Global()) {}

  // --- parse side -------------------------------------------------------

  size_t Available() const {
    return slab_ ? slab_->Size() - pos_ : 0;
  }
  const char* Data() const { return slab_ ? slab_->Data() + pos_ : nullptr; }
  std::string_view View() const {
    return std::string_view(Data(), Available());
  }
  void Consume(size_t n) { pos_ += n; }

  // The backing slab and the offset of the first unparsed byte — the
  // (frame, offset) pair a zero-copy decoder builds its views from.
  const bytes::IoBufPtr& Slab() const { return slab_; }
  size_t Pos() const { return pos_; }

  // Ensures `total` unparsed bytes can accumulate contiguously without
  // another roll: after this, Pos() + total <= slab capacity. Rolls the
  // unparsed tail into a larger pooled slab when needed.
  void Reserve(size_t total) {
    if (slab_ && pos_ + total <= slab_->Capacity()) return;
    Roll(total);
  }

  // Hands the slab to the caller iff every byte in it has been parsed
  // (the buffer then starts fresh on the next write). This is the arena
  // donation gate: only a frame that fully drained the buffer may seed
  // a dispatch arena from the slab's free tail — otherwise the reactor
  // would keep recv()ing into memory the arena just claimed.
  bytes::IoBufPtr TakeSlabIfDrained() {
    if (!slab_ || pos_ != slab_->Size()) return {};
    pos_ = 0;
    return std::move(slab_);
  }

  // --- receive side -----------------------------------------------------

  // Writable region for recv(); guarantees at least `min_space` bytes.
  char* WritePtr(size_t min_space) {
    if (!slab_ || slab_->Remaining() < min_space) {
      Roll(Available() + min_space);
    }
    return slab_->WritePtr();
  }
  size_t WriteCapacity() const { return slab_ ? slab_->Remaining() : 0; }
  void CommitWrite(size_t n) { slab_->Advance(n); }

 private:
  // Moves the unparsed tail into a fresh pooled slab of at least
  // `min_capacity` (and at least one default slab). The old slab is
  // released here but stays alive as long as any decoded Call views it.
  void Roll(size_t min_capacity) {
    size_t avail = Available();
    bytes::IoBufPtr bigger = pool_->Get(
        min_capacity > bytes::IoBufPool::kSlabBytes
            ? min_capacity
            : bytes::IoBufPool::kSlabBytes);
    if (avail > 0) {
      std::memcpy(bigger->WritePtr(), Data(), avail);
      bigger->Advance(avail);
    }
    slab_ = std::move(bigger);
    pos_ = 0;
  }

  bytes::IoBufPool* pool_;
  bytes::IoBufPtr slab_;
  size_t pos_ = 0;
};

}  // namespace heidi::net
