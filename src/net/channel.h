// Transport substrate: a blocking, bidirectional byte channel.
//
// Everything above this layer (ObjectCommunicator, Call framing) is
// transport-agnostic; the two implementations are a real TCP socket
// (tcp.h) and an in-process paired queue (inmemory.h) used for tests and
// for benchmarks that want protocol costs without kernel noise.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace heidi::bytes {
class BufferChain;
}  // namespace heidi::bytes

namespace heidi::net {

class ByteChannel {
 public:
  virtual ~ByteChannel() = default;

  // Blocking read of up to `n` bytes into `buf`; returns the number of
  // bytes read, 0 on orderly shutdown by the peer (or local Close()).
  // Throws NetError on transport failure.
  virtual size_t Read(char* buf, size_t n) = 0;

  // Blocking write of the entire buffer. Throws NetError on failure
  // (including writing to a closed channel).
  virtual void WriteAll(const char* data, size_t n) = 0;

  // Gathers every slice of `chain` onto the wire, back to back, as if
  // the flattened bytes had gone through one WriteAll — but without
  // assembling them. The base implementation loops WriteAll per slice;
  // TcpChannel overrides it with real scatter-gather (sendmsg + iovec).
  // Frame atomicity against concurrent writers is the caller's business,
  // exactly as it is for WriteAll (CallMux serializes frame writes).
  virtual void WritevAll(const bytes::BufferChain& chain);

  // Waits until Read() would not block: data is buffered, the peer shut
  // down (Read would return 0), or the channel was closed locally.
  // Returns false if `timeout_ms` elapses first; timeout_ms < 0 waits
  // forever. The base implementation reports "always readable" so custom
  // channels without poll support degrade to plain blocking reads.
  virtual bool WaitReadable(int timeout_ms) {
    (void)timeout_ms;
    return true;
  }

  // Relinquishes the underlying file descriptor to the caller, leaving
  // the channel permanently closed (-1 inside). Channels not backed by a
  // kernel descriptor return -1 and are unaffected — the reactor uses
  // this to adopt accepted TCP sockets into its epoll shards and falls
  // back to the blocking serve path when there is nothing to adopt.
  virtual int ReleaseFd() { return -1; }

  // Idempotent; unblocks any reader (locally and at the peer).
  virtual void Close() = 0;

  // Human-readable peer description for diagnostics.
  virtual std::string PeerName() const = 0;
};

// Reads exactly `n` bytes. Returns false on clean EOF *before the first
// byte*; throws NetError if EOF interrupts a partially-read block.
bool ReadExact(ByteChannel& channel, char* buf, size_t n);

}  // namespace heidi::net
