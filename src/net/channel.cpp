#include "net/channel.h"

#include "support/bytes.h"
#include "support/error.h"

namespace heidi::net {

void ByteChannel::WritevAll(const bytes::BufferChain& chain) {
  for (const bytes::BufSlice& slice : chain.Slices()) {
    WriteAll(slice.Data(), slice.length);
  }
}

bool ReadExact(ByteChannel& channel, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    size_t r = channel.Read(buf + got, n - got);
    if (r == 0) {
      if (got == 0) return false;
      throw NetError("connection closed mid-message (" + std::to_string(got) +
                     "/" + std::to_string(n) + " bytes)");
    }
    got += r;
  }
  return true;
}

}  // namespace heidi::net
