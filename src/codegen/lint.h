// `idlc --lint` — the static safety layer for custom mappings.
//
// The view mapping (DESIGN.md §4f) trades copies for lifetime contracts:
// a view-mapped servant receives non-owning windows over the request
// frame, valid only for the dispatch that produced them. The runtime
// enforces that contract with debug poisoning — after the fact, at a
// crash site. This pass enforces what it can *before* any code is
// generated: it walks the resolved IDL AST together with the mapping
// configuration (the same `viewInterfaces` selection the generator uses)
// and reports structured file:line:col diagnostics with stable codes.
//
// Diagnostic codes (documented in DESIGN.md §4g):
//
//   HL001 error    view-mapped out/inout parameter — a view is a
//                  read-only window; the owned fallback silently
//                  reintroduces the copies the mapping was selected to
//                  eliminate, so the contract rejects the signature.
//   HL002 error    oneway operation with an out/inout parameter, a
//                  non-void result, or a raises clause — nothing can
//                  travel back on a oneway.
//   HL003 warning  view mapping on an interface with an attribute
//                  setter of string/sequence type — the setter stores
//                  values across dispatches, the very pattern that
//                  dangles a view parameter stored alongside it.
//   HL004 error    duplicate/shadowed member name after the C++
//                  mapping — e.g. an operation `GetButton` colliding
//                  with the generated getter of attribute `button`.
//   HL005 error    incopy parameter mapped to a view — incopy grants
//                  the callee retention, a view forbids it.
//   HL006 warning  --view-interfaces names an interface that does not
//                  exist in the file (configuration drift).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "idl/ast.h"
#include "idl/sema.h"  // ContractDiag: sema's contract-check reports

namespace heidi::codegen {

enum class LintSeverity : uint8_t { kWarning, kError };

std::string_view LintSeverityName(LintSeverity severity);  // "warning"/"error"

struct LintDiag {
  std::string code;  // "HL001" ... — stable across releases
  LintSeverity severity = LintSeverity::kError;
  std::string file;
  int line = 0;
  int column = 0;
  std::string message;
};

// "file:line:col: error: message [HL001]" — the GCC/Clang diagnostic
// shape, so editors and CI annotators parse it for free.
std::string FormatLintDiag(const LintDiag& diag);

struct LintOptions {
  // Same syntax as `idlc --view-interfaces`: comma-separated interface
  // names (plain, scoped, or flat), or "*" for all. Empty = no view
  // mapping, so the view-contract checks (HL001/3/5/6) are idle.
  std::string view_interfaces;
  // Promote warnings to errors (`idlc --lint-fatal`).
  bool warnings_are_errors = false;
};

struct LintResult {
  std::vector<LintDiag> diags;  // sorted by line, then column, then code

  bool HasErrors() const {
    for (const auto& d : diags) {
      if (d.severity == LintSeverity::kError) return true;
    }
    return false;
  }
  bool HasWarnings() const {
    for (const auto& d : diags) {
      if (d.severity == LintSeverity::kWarning) return true;
    }
    return false;
  }
};

// Lints a *resolved* specification. `contract_diags` carries the
// contract violations sema reported while resolving (see
// idl::ContractSink); they become HL002 here. Never throws.
LintResult Lint(const idl::Specification& spec, const LintOptions& options,
                const std::vector<idl::ContractDiag>& contract_diags = {});

// Parse + resolve (collecting contract violations instead of dying on
// the first) + lint. Throws ParseError only for hard errors — input
// that cannot be parsed or resolved at all.
LintResult LintSource(std::string_view source, std::string source_name,
                      const LintOptions& options);

}  // namespace heidi::codegen
