// A *mapping* is a named set of templates that together implement one
// IDL->language binding. Builtin mappings (the paper's artifacts):
//
//   heidi_cpp — the HeidiRMI custom C++ mapping (§3, Fig 3): Hd-prefixed
//       class names, XBool/HdList/HdString types, default parameters,
//       delegation-based skeletons; templates: interface, stub, skel.
//   corba_cpp — the CORBA-prescribed C++ mapping sketch (Table 1, Fig 1):
//       CORBA:: types, _ptr object references, inheritance-based
//       skeletons; template: interface.
//   java      — the experimental HeidiRMI IDL-Java mapping (§4.2): single
//       inheritance expanded, no default parameters; template: interface.
//   tcl       — the IDL-tcl mapping for the 700-line tcl ORB (§4.2,
//       Fig 10); template: stubskel.
//
// The embedded template texts are the source of truth; `idlc
// --dump-templates <dir>` writes them out as editable .tmpl files, and any
// mapping can be overridden by pointing the driver at template files.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace heidi::codegen {

struct MappingTemplate {
  std::string name;  // template role, e.g. "interface", "stub", "skel"
  std::string text;  // template source
};

struct Mapping {
  std::string name;
  std::string description;
  std::vector<MappingTemplate> templates;
};

// nullptr if unknown.
const Mapping* FindBuiltinMapping(std::string_view name);
std::vector<std::string> BuiltinMappingNames();

}  // namespace heidi::codegen
