// Compiler driver: glues the stages together (Fig 6):
//
//   IDL source --parse/sema--> AST --build--> EST --templates--> files
//
// The driver compiles each of a mapping's templates and executes them
// against the same EST; each template decides its own output files via
// @openfile. Global variables available to every template:
//
//   sourceBase — source file name without directory or extension
//                ("idl/A.idl" -> "A"); Fig 3 names the header A.hh with it
//   sourceName — the full source name as given
//   mapping    — the mapping name ("heidi_cpp", ...)
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "codegen/mapping.h"
#include "est/node.h"
#include "tmpl/mapfuncs.h"

namespace heidi::codegen {

struct GenerateResult {
  // Output path -> file content. The "" key holds any text a template
  // emitted before its first @openfile.
  std::map<std::string, std::string> files;
};

// "dir/A.idl" -> "A".
std::string SourceBase(std::string_view source_name);

// Runs every template of `mapping` against `root`. Extra globals (merged
// over the defaults above) let callers parameterize templates.
GenerateResult Generate(const est::Node& root, const Mapping& mapping,
                        const tmpl::MapRegistry& maps,
                        const std::map<std::string, std::string>& globals = {});

// Parse + resolve + build EST + generate, with the builtin map registry.
GenerateResult GenerateFromSource(std::string_view idl_source,
                                  std::string source_name,
                                  const Mapping& mapping);

}  // namespace heidi::codegen
