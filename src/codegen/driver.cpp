#include "codegen/driver.h"

#include "est/builder.h"
#include "idl/sema.h"
#include "tmpl/interp.h"
#include "tmpl/program.h"

namespace heidi::codegen {

std::string SourceBase(std::string_view source_name) {
  size_t slash = source_name.rfind('/');
  if (slash != std::string_view::npos) {
    source_name = source_name.substr(slash + 1);
  }
  size_t dot = source_name.rfind('.');
  if (dot != std::string_view::npos && dot != 0) {
    source_name = source_name.substr(0, dot);
  }
  return std::string(source_name);
}

GenerateResult Generate(const est::Node& root, const Mapping& mapping,
                        const tmpl::MapRegistry& maps,
                        const std::map<std::string, std::string>& globals) {
  tmpl::ExecOptions options;
  options.globals["sourceBase"] = SourceBase(root.GetProp("sourceName"));
  options.globals["sourceName"] = root.GetProp("sourceName");
  options.globals["mapping"] = mapping.name;
  for (const auto& [key, value] : globals) options.globals[key] = value;

  GenerateResult result;
  for (const MappingTemplate& t : mapping.templates) {
    tmpl::TemplateProgram program =
        tmpl::CompileTemplate(t.text, mapping.name + "/" + t.name);
    tmpl::StringSink sink;
    tmpl::Execute(program, root, maps, sink, options);
    for (const std::string& file : sink.FileNames()) {
      result.files[file] += sink.File(file);
    }
  }
  // Drop an empty anonymous stream (templates that only @openfile).
  auto it = result.files.find("");
  if (it != result.files.end() && it->second.empty()) result.files.erase(it);
  return result;
}

GenerateResult GenerateFromSource(std::string_view idl_source,
                                  std::string source_name,
                                  const Mapping& mapping) {
  idl::Specification spec =
      idl::ParseAndResolve(idl_source, std::move(source_name));
  std::unique_ptr<est::Node> root = est::BuildEst(spec);
  static const tmpl::MapRegistry kBuiltins = tmpl::MapRegistry::Builtins();
  return Generate(*root, mapping, kBuiltins);
}

}  // namespace heidi::codegen
