// Umbrella header for the code-generation layer: mappings + driver.
#pragma once

#include "codegen/driver.h"   // IWYU pragma: export
#include "codegen/mapping.h"  // IWYU pragma: export
