// Umbrella header for the code-generation layer: mappings + driver + lint.
#pragma once

#include "codegen/driver.h"   // IWYU pragma: export
#include "codegen/lint.h"     // IWYU pragma: export
#include "codegen/mapping.h"  // IWYU pragma: export
