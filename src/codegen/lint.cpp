#include "codegen/lint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "idl/parser.h"
#include "support/strings.h"

namespace heidi::codegen {

namespace {

using idl::AttributeDecl;
using idl::Decl;
using idl::DeclKind;
using idl::InterfaceDecl;
using idl::OperationDecl;
using idl::ParamDecl;
using idl::ParamDir;
using idl::PrimKind;
using idl::TypeRef;

// First letter upper-cased — must match the template `Capitalize` map
// function, because HL004 reasons about the names it produces.
std::string Capitalize(std::string name) {
  if (!name.empty()) {
    name[0] =
        static_cast<char>(std::toupper(static_cast<unsigned char>(name[0])));
  }
  return name;
}

// True if the unaliased type is a string (the view mapping's
// HdStringView shape).
bool IsStringType(const TypeRef& type) {
  const TypeRef& t = idl::UnaliasType(type);
  return t.kind == TypeRef::Kind::kPrimitive && t.prim == PrimKind::kString;
}

// True if the unaliased type is an octet sequence (the HdBytesView
// shape), following typedefs on the element too.
bool IsOctetSequenceType(const TypeRef& type) {
  const TypeRef& t = idl::UnaliasType(type);
  if (t.kind != TypeRef::Kind::kSequence || t.element == nullptr) return false;
  const TypeRef& elem = idl::UnaliasType(*t.element);
  return elem.kind == TypeRef::Kind::kPrimitive &&
         elem.prim == PrimKind::kOctet;
}

bool IsViewableType(const TypeRef& type) {
  return IsStringType(type) || IsOctetSequenceType(type);
}

// True if the unaliased type is any sequence (HL003 casts wider than
// the viewable shapes: every settable container tempts retention).
bool IsSequenceType(const TypeRef& type) {
  return idl::UnaliasType(type).kind == TypeRef::Kind::kSequence;
}

std::string_view ViewableSpelling(const TypeRef& type) {
  return IsStringType(type) ? "string" : "octet sequence";
}

// Mirrors CPP::ViewMode in cppgen.cpp: an interface is view-mapped if
// the selection names it (plain, scoped, or flat spelling) or is "*".
bool IsViewSelected(const InterfaceDecl& iface,
                    const std::string& selection) {
  if (selection.empty()) return false;
  for (const std::string& raw : str::Split(selection, ',')) {
    std::string_view want = str::Trim(raw);
    if (want.empty()) continue;
    if (want == "*" || want == iface.name || want == iface.ScopedName() ||
        want == iface.FlatName()) {
      return true;
    }
  }
  return false;
}

// Transitive *defined* bases (external forward-declared bases have no
// members to collide with) — same walk as sema's CollectBases.
void CollectBases(const InterfaceDecl& iface,
                  std::vector<const InterfaceDecl*>& out) {
  for (const Decl* base_decl : iface.bases) {
    if (base_decl->decl_kind != DeclKind::kInterface) continue;
    const auto* base = static_cast<const InterfaceDecl*>(base_decl);
    bool seen = false;
    for (const auto* b : out) seen = seen || b == base;
    if (seen) continue;
    out.push_back(base);
    CollectBases(*base, out);
  }
}

class Linter {
 public:
  Linter(const idl::Specification& spec, const LintOptions& options)
      : spec_(spec), options_(options) {}

  LintResult Run(const std::vector<idl::ContractDiag>& contract_diags) {
    for (const auto& d : spec_.decls) Walk(*d);
    for (const idl::ContractDiag& cd : contract_diags) {
      Report("HL002", LintSeverity::kError, cd.line, cd.column, cd.message);
    }
    CheckViewSelection();
    std::stable_sort(result_.diags.begin(), result_.diags.end(),
                     [](const LintDiag& a, const LintDiag& b) {
                       if (a.line != b.line) return a.line < b.line;
                       if (a.column != b.column) return a.column < b.column;
                       return a.code < b.code;
                     });
    if (options_.warnings_are_errors) {
      for (LintDiag& d : result_.diags) d.severity = LintSeverity::kError;
    }
    return std::move(result_);
  }

 private:
  void Report(std::string code, LintSeverity severity, int line, int column,
              std::string message) {
    result_.diags.push_back(LintDiag{std::move(code), severity,
                                     spec_.source_name, line, column,
                                     std::move(message)});
  }

  void Walk(const Decl& decl) {
    switch (decl.decl_kind) {
      case DeclKind::kModule: {
        const auto& mod = static_cast<const idl::ModuleDecl&>(decl);
        for (const auto& d : mod.decls) Walk(*d);
        break;
      }
      case DeclKind::kInterface: {
        const auto& iface = static_cast<const InterfaceDecl&>(decl);
        interfaces_.push_back(&iface);
        for (const auto& d : iface.nested) Walk(*d);
        CheckInterface(iface);
        break;
      }
      default:
        break;
    }
  }

  void CheckInterface(const InterfaceDecl& iface) {
    const bool view = IsViewSelected(iface, options_.view_interfaces);
    if (view) CheckViewContract(iface);
    CheckMappedNames(iface);
  }

  // HL001 + HL005: the view mapping's parameter-direction contract.
  void CheckViewContract(const InterfaceDecl& iface) {
    for (const OperationDecl& op : iface.operations) {
      for (const ParamDecl& p : op.params) {
        if (!IsViewableType(p.type)) continue;
        if (p.direction == ParamDir::kOut ||
            p.direction == ParamDir::kInOut) {
          Report("HL001", LintSeverity::kError, p.line, p.column,
                 "view-mapped interface '" + iface.name + "': " +
                     std::string(idl::ParamDirName(p.direction)) +
                     " parameter '" + p.name + "' of " +
                     std::string(ViewableSpelling(p.type)) +
                     " type cannot be a view (views are read-only windows "
                     "over the request frame; remove the interface from "
                     "--view-interfaces or pass the value in)");
        } else if (p.direction == ParamDir::kInCopy) {
          Report("HL005", LintSeverity::kError, p.line, p.column,
                 "view-mapped interface '" + iface.name +
                     "': incopy parameter '" + p.name +
                     "' would map to a view — incopy lets the callee "
                     "retain its copy, but a view must not outlive the "
                     "dispatch (use `in`, or drop the view mapping)");
        }
      }
    }
    // HL003: a settable string/sequence attribute means the servant
    // stores caller data across dispatches — the exact pattern that
    // turns a stored view parameter into a dangling one.
    for (const AttributeDecl& at : iface.attributes) {
      if (at.readonly) continue;
      if (!IsStringType(at.type) && !IsSequenceType(at.type)) continue;
      Report("HL003", LintSeverity::kWarning, at.line, at.column,
             "view-mapped interface '" + iface.name + "': attribute '" +
                 at.name + "' has a setter that stores a " +
                 (IsStringType(at.type) ? "string" : "sequence") +
                 " across dispatches — servants must copy view "
                 "parameters before storing them (views die with the "
                 "dispatch; see DESIGN.md §4g)");
    }
  }

  // HL004: names that collide only *after* the C++ mapping. Sema
  // already rejects raw-name duplicates (own and inherited); this
  // checks the names the generator will actually emit: operations keep
  // their spelling, attributes expand to Get<Name>/Set<Name>.
  void CheckMappedNames(const InterfaceDecl& iface) {
    struct Member {
      std::string describe;  // "operation 'GetButton'"
      int line = 0;
      int column = 0;
      bool inherited = false;
    };
    std::map<std::string, Member> mapped;

    auto add = [&](const std::string& cpp_name, Member member) {
      auto [it, inserted] = mapped.emplace(cpp_name, member);
      if (inserted) return;
      if (member.inherited && it->second.inherited) return;
      // Report at the non-inherited site (own members win the blame).
      const Member& at = member.inherited ? it->second : member;
      const Member& other = member.inherited ? member : it->second;
      Report("HL004", LintSeverity::kError, at.line, at.column,
             "interface '" + iface.name + "': " + at.describe +
                 " maps to C++ member '" + cpp_name + "', which collides "
                 "with " + other.describe +
                 (other.inherited ? " inherited from a base interface"
                                  : "") +
                 " after the heidi_cpp mapping");
    };

    auto add_members = [&](const InterfaceDecl& from, bool inherited) {
      for (const OperationDecl& op : from.operations) {
        add(op.name, Member{"operation '" + op.name + "'", op.line,
                            op.column, inherited});
      }
      for (const AttributeDecl& at : from.attributes) {
        std::string cap = Capitalize(at.name);
        Member getter{"the generated getter of attribute '" + at.name + "'",
                      at.line, at.column, inherited};
        add("Get" + cap, getter);
        if (!at.readonly) {
          Member setter{"the generated setter of attribute '" + at.name +
                            "'",
                        at.line, at.column, inherited};
          add("Set" + cap, setter);
        }
      }
    };

    add_members(iface, /*inherited=*/false);
    std::vector<const InterfaceDecl*> bases;
    CollectBases(iface, bases);
    for (const InterfaceDecl* base : bases) {
      add_members(*base, /*inherited=*/true);
    }
  }

  // HL006: every non-"*" entry of --view-interfaces must name an
  // interface that exists, else the zero-copy selection silently maps
  // nothing and every "view" dispatch still copies.
  void CheckViewSelection() {
    for (const std::string& raw : str::Split(options_.view_interfaces, ',')) {
      std::string want(str::Trim(raw));
      if (want.empty() || want == "*") continue;
      bool found = false;
      for (const InterfaceDecl* iface : interfaces_) {
        if (want == iface->name || want == iface->ScopedName() ||
            want == iface->FlatName()) {
          found = true;
          break;
        }
      }
      if (!found) {
        Report("HL006", LintSeverity::kWarning, 0, 0,
               "--view-interfaces names '" + want +
                   "', which matches no interface in this file — the "
                   "view mapping will not be applied anywhere");
      }
    }
  }

  const idl::Specification& spec_;
  const LintOptions& options_;
  std::vector<const InterfaceDecl*> interfaces_;
  LintResult result_;
};

}  // namespace

std::string_view LintSeverityName(LintSeverity severity) {
  return severity == LintSeverity::kError ? "error" : "warning";
}

std::string FormatLintDiag(const LintDiag& diag) {
  std::ostringstream os;
  os << diag.file;
  if (diag.line > 0) {
    os << ":" << diag.line;
    if (diag.column > 0) os << ":" << diag.column;
  }
  os << ": " << LintSeverityName(diag.severity) << ": " << diag.message
     << " [" << diag.code << "]";
  return os.str();
}

LintResult Lint(const idl::Specification& spec, const LintOptions& options,
                const std::vector<idl::ContractDiag>& contract_diags) {
  Linter linter(spec, options);
  return linter.Run(contract_diags);
}

LintResult LintSource(std::string_view source, std::string source_name,
                      const LintOptions& options) {
  idl::Specification spec = idl::Parse(source, std::move(source_name));
  std::vector<idl::ContractDiag> contract_diags;
  idl::Resolve(spec, [&contract_diags](const idl::ContractDiag& d) {
    contract_diags.push_back(d);
  });
  return Lint(spec, options, contract_diags);
}

}  // namespace heidi::codegen
