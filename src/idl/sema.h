// Semantic analysis: scope construction, name resolution, inheritance
// linking, repository-id assignment, and the structural checks that give
// templates a guaranteed-well-formed tree to walk.
//
// Checks performed (each violation throws ParseError):
//  - duplicate declarations in a scope (module reopening is permitted);
//  - interface bases resolve to interfaces already *defined* (not merely
//    forward-declared), with no duplicates;
//  - forward declarations link to their definition when one exists;
//  - named types resolve through enclosing scopes (innermost first, then
//    outward, absolute `::name` supported);
//  - default parameters are trailing, and their literal matches the
//    parameter type (enum defaults must name a member of that enum);
//  - `incopy` follows the paper's rule: legal on any `in`-position type;
//  - oneway operations return void, take only in/incopy parameters, and
//    raise nothing;
//  - raises clauses resolve to exception declarations;
//  - operation/attribute names are unique within an interface and do not
//    collide with inherited ones (CORBA forbids overloading/redefinition).
#pragma once

#include <string>
#include <string_view>

#include "idl/ast.h"

namespace heidi::idl {

// Resolves and checks `spec` in place.
void Resolve(Specification& spec);

// Convenience: parse + resolve.
Specification ParseAndResolve(std::string_view source,
                              std::string source_name = "<input>");

// --- type classification helpers used by the EST builder and runtime ------

// Follows typedef chains to the underlying type. Returns a reference into
// the AST; `spec` must outlive the result. For non-named types returns
// `type` itself.
const TypeRef& UnaliasType(const TypeRef& type);

// EST type tag for a (resolved) type: one of "void", "boolean", "char",
// "octet", "short", "ushort", "long", "ulong", "longlong", "ulonglong",
// "float", "double", "string", "enum", "struct", "sequence", "objref",
// "alias", "exception".
std::string TypeTag(const TypeRef& type);

// Flat type name for named types ("Heidi_A"); empty for primitives.
std::string TypeFlatName(const TypeRef& type);

// True if the type has variable (non-fixed) marshaled size: strings,
// sequences, object references, and structs/exceptions containing any of
// those, following typedefs.
bool IsVariableType(const TypeRef& type);

}  // namespace heidi::idl
