// Semantic analysis: scope construction, name resolution, inheritance
// linking, repository-id assignment, and the structural checks that give
// templates a guaranteed-well-formed tree to walk.
//
// Checks performed (each violation throws ParseError):
//  - duplicate declarations in a scope (module reopening is permitted);
//  - interface bases resolve to interfaces already *defined* (not merely
//    forward-declared), with no duplicates;
//  - forward declarations link to their definition when one exists;
//  - named types resolve through enclosing scopes (innermost first, then
//    outward, absolute `::name` supported);
//  - default parameters are trailing, and their literal matches the
//    parameter type (enum defaults must name a member of that enum);
//  - `incopy` follows the paper's rule: legal on any `in`-position type;
//  - oneway operations return void, take only in/incopy parameters, and
//    raise nothing;
//  - raises clauses resolve to exception declarations;
//  - operation/attribute names are unique within an interface and do not
//    collide with inherited ones (CORBA forbids overloading/redefinition).
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "idl/ast.h"

namespace heidi::idl {

// A *contract* violation found during Resolve: the tree is structurally
// sound (every name resolves, every literal type-checks) but a declared
// operation breaks an invocation-model rule — today, the oneway rules.
// Hard errors (unresolved names, duplicate declarations, malformed
// literals) always throw ParseError; contract violations are routed
// through a sink so batch tooling (`idlc --lint`) can collect them all
// with source positions instead of dying on the first one.
struct ContractDiag {
  enum class Check : uint8_t {
    kOnewayNonVoidResult,   // oneway operation with a non-void result
    kOnewayOutParam,        // oneway operation with an out/inout parameter
    kOnewayRaises,          // oneway operation with a raises clause
  };
  Check check;
  int line = 0;
  int column = 0;
  std::string message;  // human-readable, without source position
};

// Receives each contract violation as it is found. Resolution continues
// after the callback returns, so one pass reports every violation.
using ContractSink = std::function<void(const ContractDiag&)>;

// Resolves and checks `spec` in place. With no sink, contract violations
// throw ParseError exactly like hard errors (the historical behavior);
// with a sink they are reported and resolution continues.
void Resolve(Specification& spec, const ContractSink& sink = nullptr);

// Convenience: parse + resolve.
Specification ParseAndResolve(std::string_view source,
                              std::string source_name = "<input>");

// --- type classification helpers used by the EST builder and runtime ------

// Follows typedef chains to the underlying type. Returns a reference into
// the AST; `spec` must outlive the result. For non-named types returns
// `type` itself.
const TypeRef& UnaliasType(const TypeRef& type);

// EST type tag for a (resolved) type: one of "void", "boolean", "char",
// "octet", "short", "ushort", "long", "ulong", "longlong", "ulonglong",
// "float", "double", "string", "enum", "struct", "sequence", "objref",
// "alias", "exception".
std::string TypeTag(const TypeRef& type);

// Flat type name for named types ("Heidi_A"); empty for primitives.
std::string TypeFlatName(const TypeRef& type);

// True if the type has variable (non-fixed) marshaled size: strings,
// sequences, object references, and structs/exceptions containing any of
// those, following typedefs.
bool IsVariableType(const TypeRef& type);

}  // namespace heidi::idl
