// Hand-written lexer for the IDL subset.
//
// Handles // and /* */ comments, decimal/hex/octal integer literals,
// floating literals, string and character literals with the usual escapes,
// and `#pragma prefix "..."` directives (other preprocessor lines are
// rejected — the compiler expects pre-expanded input, matching the paper's
// single-file usage).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "idl/token.h"

namespace heidi::idl {

class Lexer {
 public:
  // `source_name` is used in diagnostics only.
  Lexer(std::string_view source, std::string source_name = "<input>");

  // Lexes the next token; returns kEof forever once exhausted.
  // Throws ParseError on malformed input.
  Token Next();

  // Lexes the full input. The final element is always the kEof token.
  std::vector<Token> Tokenize();

  // Value of the last seen `#pragma prefix "..."` (empty if none).
  const std::string& PragmaPrefix() const { return pragma_prefix_; }

  const std::string& SourceName() const { return source_name_; }

 private:
  char Peek(size_t ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= src_.size(); }
  void SkipTrivia();        // whitespace, comments, #pragma lines
  Token MakeWord();
  Token MakeNumber();
  Token MakeString();
  Token MakeChar();
  [[noreturn]] void Fail(const std::string& msg) const;

  std::string src_;
  std::string source_name_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  std::string pragma_prefix_;
};

}  // namespace heidi::idl
