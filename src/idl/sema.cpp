#include "idl/sema.h"

#include <map>
#include <sstream>
#include <vector>

#include "idl/parser.h"
#include "support/error.h"
#include "support/strings.h"

namespace heidi::idl {

namespace {

// A scope entry: a declaration, or an enum member (owner + index).
struct Entry {
  Decl* decl = nullptr;
  const EnumDecl* enum_owner = nullptr;
  int enum_member = -1;

  bool IsEnumMember() const { return enum_owner != nullptr; }
};

class Sema {
 public:
  explicit Sema(Specification& spec, const ContractSink& sink)
      : spec_(spec), sink_(sink) {}

  void Run() {
    for (auto& d : spec_.decls) Collect(*d, /*enclosing=*/nullptr);
    for (auto& d : spec_.decls) ResolveDecl(*d);
  }

 private:
  [[noreturn]] void Fail(int line, const std::string& msg) {
    std::ostringstream os;
    os << spec_.source_name << ":" << line << ": " << msg;
    throw ParseError(os.str());
  }

  // Contract violation: reported through the sink when one is installed
  // (and resolution continues), thrown as a hard error otherwise.
  void Contract(ContractDiag::Check check, int line, int column,
                const std::string& msg) {
    if (sink_) {
      sink_(ContractDiag{check, line, column, msg});
      return;
    }
    Fail(line, msg);
  }

  static std::string ScopePrefix(const Decl* enclosing) {
    return enclosing == nullptr ? "" : enclosing->ScopedName() + "::";
  }

  void Declare(const std::string& scoped, Entry entry, int line) {
    auto [it, inserted] = table_.emplace(scoped, entry);
    if (inserted) return;
    Entry& existing = it->second;
    // Module reopening: both old and new entries are modules.
    if (existing.decl != nullptr && entry.decl != nullptr &&
        existing.decl->decl_kind == DeclKind::kModule &&
        entry.decl->decl_kind == DeclKind::kModule) {
      return;
    }
    // A forward declaration may coexist with its definition (and vice
    // versa); keep the definition in the table.
    auto is_fwd = [](const Entry& e) {
      return e.decl != nullptr &&
             e.decl->decl_kind == DeclKind::kForwardInterface;
    };
    auto is_iface = [](const Entry& e) {
      return e.decl != nullptr && e.decl->decl_kind == DeclKind::kInterface;
    };
    if (is_fwd(existing) && is_iface(entry)) {
      existing = entry;
      return;
    }
    if (is_iface(existing) && is_fwd(entry)) return;
    if (is_fwd(existing) && is_fwd(entry)) return;
    Fail(line, "duplicate declaration of '" + scoped + "'");
  }

  void Collect(Decl& decl, Decl* enclosing) {
    decl.enclosing = enclosing;
    decl.repo_id = MakeRepoId(decl);
    const std::string scoped = decl.ScopedName();
    Declare(scoped, Entry{&decl, nullptr, -1}, decl.line);

    switch (decl.decl_kind) {
      case DeclKind::kModule: {
        auto& mod = static_cast<ModuleDecl&>(decl);
        for (auto& d : mod.decls) Collect(*d, &decl);
        break;
      }
      case DeclKind::kInterface: {
        auto& iface = static_cast<InterfaceDecl&>(decl);
        for (auto& d : iface.nested) Collect(*d, &decl);
        break;
      }
      case DeclKind::kEnum: {
        // IDL enum members are introduced into the *enclosing* scope.
        auto& en = static_cast<EnumDecl&>(decl);
        for (size_t i = 0; i < en.members.size(); ++i) {
          Declare(ScopePrefix(enclosing) + en.members[i],
                  Entry{nullptr, &en, static_cast<int>(i)}, decl.line);
        }
        break;
      }
      default:
        break;
    }
  }

  std::string MakeRepoId(const Decl& decl) const {
    std::string body = str::ReplaceAll(decl.ScopedName(), "::", "/");
    std::string prefix =
        spec_.pragma_prefix.empty() ? "" : spec_.pragma_prefix + "/";
    return "IDL:" + prefix + body + ":1.0";
  }

  // Looks up `name` starting from `from` and walking outward; absolute
  // names (leading ::) skip the walk. Returns nullptr if not found.
  const Entry* Lookup(const std::string& name, const Decl* from) const {
    if (str::StartsWith(name, "::")) {
      auto it = table_.find(name.substr(2));
      return it == table_.end() ? nullptr : &it->second;
    }
    for (const Decl* scope = from; scope != nullptr;
         scope = scope->enclosing) {
      auto it = table_.find(scope->ScopedName() + "::" + name);
      if (it != table_.end()) return &it->second;
    }
    auto it = table_.find(name);
    return it == table_.end() ? nullptr : &it->second;
  }

  const Entry& LookupOrFail(const std::string& name, const Decl* from,
                            int line, const char* what) {
    const Entry* e = Lookup(name, from);
    if (e == nullptr) {
      Fail(line, std::string("unresolved ") + what + " '" + name + "'");
    }
    return *e;
  }

  void ResolveType(TypeRef& type, const Decl* scope, int line) {
    switch (type.kind) {
      case TypeRef::Kind::kPrimitive:
        return;
      case TypeRef::Kind::kSequence:
        ResolveType(*type.element, scope, line);
        return;
      case TypeRef::Kind::kNamed: {
        const Entry& entry = LookupOrFail(type.name, scope, line, "type");
        if (entry.IsEnumMember()) {
          Fail(line, "'" + type.name + "' names an enum member, not a type");
        }
        Decl* d = entry.decl;
        if (d->decl_kind == DeclKind::kConst) {
          Fail(line, "'" + type.name + "' names a constant, not a type");
        }
        if (d->decl_kind == DeclKind::kModule) {
          Fail(line, "'" + type.name + "' names a module, not a type");
        }
        if (d->decl_kind == DeclKind::kForwardInterface) {
          auto& fwd = static_cast<ForwardInterfaceDecl&>(*d);
          if (fwd.definition != nullptr) {
            type.resolved = fwd.definition;
            return;
          }
        }
        type.resolved = d;
        return;
      }
    }
  }

  void ResolveDecl(Decl& decl) {
    switch (decl.decl_kind) {
      case DeclKind::kModule: {
        auto& mod = static_cast<ModuleDecl&>(decl);
        for (auto& d : mod.decls) ResolveDecl(*d);
        break;
      }
      case DeclKind::kForwardInterface: {
        auto& fwd = static_cast<ForwardInterfaceDecl&>(decl);
        const Entry* e = Lookup(fwd.name, fwd.enclosing);
        if (e != nullptr && e->decl != nullptr &&
            e->decl->decl_kind == DeclKind::kInterface) {
          fwd.definition = static_cast<const InterfaceDecl*>(e->decl);
        }
        break;
      }
      case DeclKind::kInterface:
        ResolveInterface(static_cast<InterfaceDecl&>(decl));
        break;
      case DeclKind::kTypedef: {
        auto& td = static_cast<TypedefDecl&>(decl);
        ResolveType(td.type, td.enclosing, td.line);
        break;
      }
      case DeclKind::kStruct: {
        auto& st = static_cast<StructDecl&>(decl);
        for (auto& f : st.fields) ResolveType(f.type, st.enclosing, f.line);
        break;
      }
      case DeclKind::kException: {
        auto& ex = static_cast<ExceptionDecl&>(decl);
        for (auto& f : ex.fields) ResolveType(f.type, ex.enclosing, f.line);
        break;
      }
      case DeclKind::kUnion:
        ResolveUnion(static_cast<UnionDecl&>(decl));
        break;
      case DeclKind::kConst: {
        auto& cd = static_cast<ConstDecl&>(decl);
        ResolveType(cd.type, cd.enclosing, cd.line);
        CheckLiteral(cd.value, cd.type, cd.enclosing, cd.line, "constant");
        break;
      }
      case DeclKind::kEnum:
        break;
    }
  }

  void ResolveUnion(UnionDecl& un) {
    ResolveType(un.discriminator, un.enclosing, un.line);
    const TypeRef& disc = UnaliasType(un.discriminator);
    bool ok_disc = false;
    if (disc.kind == TypeRef::Kind::kPrimitive) {
      switch (disc.prim) {
        case PrimKind::kBoolean:
        case PrimKind::kChar:
        case PrimKind::kShort:
        case PrimKind::kUShort:
        case PrimKind::kLong:
        case PrimKind::kULong:
        case PrimKind::kLongLong:
        case PrimKind::kULongLong:
          ok_disc = true;
          break;
        default:
          break;
      }
    } else if (disc.kind == TypeRef::Kind::kNamed &&
               disc.resolved != nullptr &&
               disc.resolved->decl_kind == DeclKind::kEnum) {
      ok_disc = true;
    }
    if (!ok_disc) {
      Fail(un.line, "union discriminator must be an integral, char, "
                    "boolean, or enum type");
    }

    bool saw_default = false;
    // Normalized label values for duplicate detection.
    std::map<std::string, int> seen_labels;
    std::map<std::string, int> member_names;
    for (auto& arm : un.cases) {
      ResolveType(arm.type, un.enclosing, arm.line);
      auto [name_it, name_new] = member_names.emplace(arm.name, arm.line);
      if (!name_new) {
        Fail(arm.line, "duplicate union member '" + arm.name + "'");
      }
      if (arm.is_default) {
        if (saw_default) {
          Fail(arm.line, "union has more than one default member");
        }
        saw_default = true;
      }
      for (Literal& label : arm.labels) {
        CheckLiteral(label, un.discriminator, un.enclosing, arm.line,
                     "case label");
        std::string key;
        switch (label.kind) {
          case Literal::Kind::kInt:
            key = "i" + std::to_string(label.int_value);
            break;
          case Literal::Kind::kBool:
            key = label.bool_value ? "bT" : "bF";
            break;
          case Literal::Kind::kChar:
            key = "c" + label.text;
            break;
          case Literal::Kind::kScoped:
            // Enum member: normalized to index by CheckLiteral.
            key = "e" + std::to_string(label.int_value);
            break;
          default:
            Fail(arm.line, "invalid case label for union discriminator");
        }
        auto [it, inserted] = seen_labels.emplace(key, arm.line);
        if (!inserted) {
          Fail(arm.line, "duplicate union case label (first used at line " +
                             std::to_string(it->second) + ")");
        }
      }
    }
  }

  void ResolveInterface(InterfaceDecl& iface) {
    // Bases. A base may be an interface defined earlier in this file, or
    // an *external* interface known only through a forward declaration
    // (Fig 3: `interface S;` followed by `interface A : S`). A forward
    // declaration whose definition appears in this file resolves to the
    // definition — which must then precede its use as a base.
    for (const std::string& base_name : iface.base_names) {
      const Entry& e =
          LookupOrFail(base_name, iface.enclosing, iface.line, "base");
      Decl* d = e.decl;
      if (d != nullptr && d->decl_kind == DeclKind::kForwardInterface) {
        auto& fwd = static_cast<ForwardInterfaceDecl&>(*d);
        // Link eagerly: ResolveDecl for the forward decl may not have run
        // yet when the inheriting interface is resolved first.
        if (fwd.definition == nullptr) {
          const Entry* def = Lookup(fwd.name, fwd.enclosing);
          if (def != nullptr && def->decl != nullptr &&
              def->decl->decl_kind == DeclKind::kInterface) {
            fwd.definition = static_cast<const InterfaceDecl*>(def->decl);
          }
        }
        if (fwd.definition != nullptr) d = const_cast<InterfaceDecl*>(
            static_cast<const InterfaceDecl*>(fwd.definition));
        // else: external interface — keep the forward decl as the base.
      }
      if (d == nullptr || (d->decl_kind != DeclKind::kInterface &&
                           d->decl_kind != DeclKind::kForwardInterface)) {
        Fail(iface.line, "base '" + base_name + "' is not an interface");
      }
      if (d == &iface) {
        Fail(iface.line, "interface cannot inherit from itself");
      }
      for (const auto* existing : iface.bases) {
        if (existing == d) {
          Fail(iface.line, "duplicate base interface '" + base_name + "'");
        }
      }
      iface.bases.push_back(d);
    }

    for (auto& d : iface.nested) ResolveDecl(*d);

    // Member name uniqueness (own + inherited).
    std::map<std::string, int> member_lines;
    auto check_name = [&](const std::string& name, int line) {
      auto [it, inserted] = member_lines.emplace(name, line);
      if (!inserted) {
        Fail(line, "duplicate member '" + name + "' in interface '" +
                       iface.name + "' (first declared at line " +
                       std::to_string(it->second) + ")");
      }
    };
    for (const auto& op : iface.operations) check_name(op.name, op.line);
    for (const auto& at : iface.attributes) check_name(at.name, at.line);
    std::vector<const InterfaceDecl*> all_bases;
    CollectBases(iface, all_bases);
    for (const auto* base : all_bases) {
      for (const auto& op : base->operations) {
        if (member_lines.count(op.name)) {
          Fail(member_lines[op.name],
               "member '" + op.name + "' redefines inherited member from '" +
                   base->name + "' (CORBA forbids redefinition)");
        }
      }
      for (const auto& at : base->attributes) {
        if (member_lines.count(at.name)) {
          Fail(member_lines[at.name],
               "member '" + at.name + "' redefines inherited member from '" +
                   base->name + "'");
        }
      }
    }

    // Operations.
    for (auto& op : iface.operations) {
      ResolveType(op.return_type, &iface, op.line);
      bool saw_default = false;
      for (auto& p : op.params) {
        ResolveType(p.type, &iface, p.line);
        if (p.default_value.IsSet()) {
          if (p.direction == ParamDir::kOut ||
              p.direction == ParamDir::kInOut) {
            Fail(p.line, "default value on '" + p.name +
                             "' requires an in/incopy parameter");
          }
          saw_default = true;
          CheckLiteral(p.default_value, p.type, &iface, p.line,
                       "default for parameter '" + p.name + "'");
        } else if (saw_default) {
          Fail(p.line,
               "parameter '" + p.name +
                   "' without default follows a parameter with a default");
        }
      }
      if (op.oneway) {
        if (!(op.return_type.kind == TypeRef::Kind::kPrimitive &&
              op.return_type.prim == PrimKind::kVoid)) {
          Contract(ContractDiag::Check::kOnewayNonVoidResult, op.line,
                   op.column,
                   "oneway operation '" + op.name + "' must return void");
        }
        for (const auto& p : op.params) {
          if (p.direction == ParamDir::kOut ||
              p.direction == ParamDir::kInOut) {
            Contract(ContractDiag::Check::kOnewayOutParam, p.line, p.column,
                     "oneway operation '" + op.name +
                         "' cannot have out/inout parameters");
          }
        }
        if (!op.raises.empty()) {
          Contract(ContractDiag::Check::kOnewayRaises, op.line, op.column,
                   "oneway operation '" + op.name +
                       "' cannot raise exceptions");
        }
      }
      for (const std::string& r : op.raises) {
        const Entry& e = LookupOrFail(r, &iface, op.line, "exception");
        if (e.decl == nullptr || e.decl->decl_kind != DeclKind::kException) {
          Fail(op.line, "raises clause '" + r + "' is not an exception");
        }
        op.raises_resolved.push_back(e.decl);
      }
    }

    // Attributes.
    for (auto& at : iface.attributes) {
      ResolveType(at.type, &iface, at.line);
    }
  }

  // Collects transitive *defined* bases; external (forward-only) bases
  // contribute no members and are skipped.
  static void CollectBases(const InterfaceDecl& iface,
                           std::vector<const InterfaceDecl*>& out) {
    for (const Decl* base_decl : iface.bases) {
      if (base_decl->decl_kind != DeclKind::kInterface) continue;
      const auto* base = static_cast<const InterfaceDecl*>(base_decl);
      bool seen = false;
      for (const auto* b : out) seen = seen || b == base;
      if (seen) continue;
      out.push_back(base);
      CollectBases(*base, out);
    }
  }

  void CheckLiteral(Literal& lit, const TypeRef& type, const Decl* scope,
                    int line, const std::string& what) {
    const TypeRef& actual = UnaliasType(type);
    switch (lit.kind) {
      case Literal::Kind::kNone:
        return;
      case Literal::Kind::kInt: {
        if (actual.kind != TypeRef::Kind::kPrimitive) {
          Fail(line, what + ": integer literal for non-numeric type");
        }
        switch (actual.prim) {
          case PrimKind::kShort:
          case PrimKind::kUShort:
          case PrimKind::kLong:
          case PrimKind::kULong:
          case PrimKind::kLongLong:
          case PrimKind::kULongLong:
          case PrimKind::kOctet:
          case PrimKind::kFloat:
          case PrimKind::kDouble:
            return;
          default:
            Fail(line, what + ": integer literal for non-numeric type");
        }
      }
      case Literal::Kind::kFloat: {
        if (actual.kind != TypeRef::Kind::kPrimitive ||
            (actual.prim != PrimKind::kFloat &&
             actual.prim != PrimKind::kDouble)) {
          Fail(line, what + ": float literal for non-floating type");
        }
        return;
      }
      case Literal::Kind::kBool: {
        if (actual.kind != TypeRef::Kind::kPrimitive ||
            actual.prim != PrimKind::kBoolean) {
          Fail(line, what + ": boolean literal for non-boolean type");
        }
        return;
      }
      case Literal::Kind::kString: {
        if (actual.kind != TypeRef::Kind::kPrimitive ||
            actual.prim != PrimKind::kString) {
          Fail(line, what + ": string literal for non-string type");
        }
        return;
      }
      case Literal::Kind::kChar: {
        if (actual.kind != TypeRef::Kind::kPrimitive ||
            actual.prim != PrimKind::kChar) {
          Fail(line, what + ": character literal for non-char type");
        }
        return;
      }
      case Literal::Kind::kScoped: {
        const Entry& e = LookupOrFail(lit.text, scope, line, "name");
        if (e.IsEnumMember()) {
          if (actual.kind != TypeRef::Kind::kNamed ||
              actual.resolved != e.enum_owner) {
            Fail(line, what + ": enum member '" + lit.text +
                           "' does not belong to the parameter's enum type");
          }
          // Normalize to the member's unscoped name + index for codegen.
          lit.int_value = e.enum_member;
          lit.text = e.enum_owner->members[static_cast<size_t>(e.enum_member)];
          return;
        }
        if (e.decl != nullptr && e.decl->decl_kind == DeclKind::kConst) {
          return;  // const-referencing defaults are allowed
        }
        Fail(line, what + ": '" + lit.text +
                       "' is neither an enum member nor a constant");
      }
    }
  }

  Specification& spec_;
  const ContractSink& sink_;
  std::map<std::string, Entry> table_;
};

}  // namespace

void Resolve(Specification& spec, const ContractSink& sink) {
  Sema sema(spec, sink);
  sema.Run();
}

Specification ParseAndResolve(std::string_view source,
                              std::string source_name) {
  Specification spec = Parse(source, std::move(source_name));
  Resolve(spec);
  return spec;
}

const TypeRef& UnaliasType(const TypeRef& type) {
  const TypeRef* t = &type;
  // Typedef chains are finite (sema would have failed on unresolved names),
  // but guard against accidental cycles.
  for (int depth = 0; depth < 64; ++depth) {
    if (t->kind != TypeRef::Kind::kNamed || t->resolved == nullptr) return *t;
    if (t->resolved->decl_kind != DeclKind::kTypedef) return *t;
    t = &static_cast<const TypedefDecl*>(t->resolved)->type;
  }
  return *t;
}

std::string TypeTag(const TypeRef& type) {
  switch (type.kind) {
    case TypeRef::Kind::kPrimitive:
      switch (type.prim) {
        case PrimKind::kVoid: return "void";
        case PrimKind::kBoolean: return "boolean";
        case PrimKind::kChar: return "char";
        case PrimKind::kOctet: return "octet";
        case PrimKind::kShort: return "short";
        case PrimKind::kUShort: return "ushort";
        case PrimKind::kLong: return "long";
        case PrimKind::kULong: return "ulong";
        case PrimKind::kLongLong: return "longlong";
        case PrimKind::kULongLong: return "ulonglong";
        case PrimKind::kFloat: return "float";
        case PrimKind::kDouble: return "double";
        case PrimKind::kString: return "string";
      }
      return "void";
    case TypeRef::Kind::kSequence:
      return "sequence";
    case TypeRef::Kind::kNamed: {
      const Decl* d = type.resolved;
      if (d == nullptr) return "objref";  // unresolved: only legal pre-sema
      switch (d->decl_kind) {
        case DeclKind::kInterface:
        case DeclKind::kForwardInterface:
          return "objref";
        case DeclKind::kEnum: return "enum";
        case DeclKind::kStruct: return "struct";
        case DeclKind::kUnion: return "union";
        case DeclKind::kException: return "exception";
        case DeclKind::kTypedef: return "alias";
        default: return "objref";
      }
    }
  }
  return "void";
}

std::string TypeFlatName(const TypeRef& type) {
  if (type.kind != TypeRef::Kind::kNamed) return "";
  if (type.resolved != nullptr) return type.resolved->FlatName();
  return str::ReplaceAll(type.name, "::", "_");
}

bool IsVariableType(const TypeRef& type) {
  const TypeRef& t = UnaliasType(type);
  switch (t.kind) {
    case TypeRef::Kind::kPrimitive:
      return t.prim == PrimKind::kString;
    case TypeRef::Kind::kSequence:
      return true;
    case TypeRef::Kind::kNamed: {
      const Decl* d = t.resolved;
      if (d == nullptr) return true;
      switch (d->decl_kind) {
        case DeclKind::kInterface:
        case DeclKind::kForwardInterface:
          return true;
        case DeclKind::kEnum:
          return false;
        case DeclKind::kStruct: {
          const auto* st = static_cast<const StructDecl*>(d);
          for (const auto& f : st->fields) {
            if (IsVariableType(f.type)) return true;
          }
          return false;
        }
        case DeclKind::kException: {
          const auto* ex = static_cast<const ExceptionDecl*>(d);
          for (const auto& f : ex->fields) {
            if (IsVariableType(f.type)) return true;
          }
          return false;
        }
        case DeclKind::kUnion: {
          const auto* un = static_cast<const UnionDecl*>(d);
          for (const auto& arm : un->cases) {
            if (IsVariableType(arm.type)) return true;
          }
          return false;
        }
        default:
          return true;
      }
    }
  }
  return true;
}

}  // namespace heidi::idl
