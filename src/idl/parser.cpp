#include "idl/parser.h"

#include <cstdlib>
#include <sstream>

#include "idl/lexer.h"
#include "support/error.h"

namespace heidi::idl {

namespace {

class Parser {
 public:
  Parser(std::string_view source, std::string source_name)
      : lexer_(source, std::move(source_name)) {
    tokens_ = lexer_.Tokenize();
  }

  Specification ParseSpecification() {
    Specification spec;
    spec.source_name = lexer_.SourceName();
    while (!Check(Tok::kEof)) {
      spec.decls.push_back(ParseDefinition());
    }
    spec.pragma_prefix = lexer_.PragmaPrefix();
    return spec;
  }

 private:
  // --- token plumbing ----------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() {
    const Token& t = Peek();
    if (pos_ < tokens_.size() - 1) ++pos_;
    return t;
  }
  bool Check(Tok kind) const { return Peek().kind == kind; }
  bool Match(Tok kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }
  const Token& Expect(Tok kind, const char* context) {
    if (!Check(kind)) {
      std::ostringstream os;
      os << lexer_.SourceName() << ":" << Peek().line << ":" << Peek().column
         << ": expected " << TokName(kind) << " " << context << ", got "
         << TokName(Peek().kind);
      if (Peek().kind == Tok::kIdentifier) os << " '" << Peek().text << "'";
      throw ParseError(os.str());
    }
    return Advance();
  }
  [[noreturn]] void Fail(const std::string& msg) const {
    std::ostringstream os;
    os << lexer_.SourceName() << ":" << Peek().line << ":" << Peek().column
       << ": " << msg;
    throw ParseError(os.str());
  }

  // --- grammar -----------------------------------------------------------
  std::unique_ptr<Decl> ParseDefinition() {
    switch (Peek().kind) {
      case Tok::kKwModule: return ParseModule();
      case Tok::kKwInterface: return ParseInterfaceOrForward();
      case Tok::kKwEnum: return ParseEnum();
      case Tok::kKwStruct: return ParseStruct();
      case Tok::kKwUnion: return ParseUnion();
      case Tok::kKwException: return ParseException();
      case Tok::kKwTypedef: return ParseTypedef();
      case Tok::kKwConst: return ParseConst();
      default:
        Fail("expected a definition (module/interface/enum/struct/union/"
             "exception/typedef/const)");
    }
  }

  std::unique_ptr<Decl> ParseModule() {
    auto mod = std::make_unique<ModuleDecl>();
    mod->line = Peek().line;
    mod->column = Peek().column;
    Expect(Tok::kKwModule, "starting module");
    mod->name = Expect(Tok::kIdentifier, "naming module").text;
    Expect(Tok::kLBrace, "opening module body");
    while (!Check(Tok::kRBrace)) {
      if (Check(Tok::kEof)) Fail("unterminated module body");
      mod->decls.push_back(ParseDefinition());
    }
    Expect(Tok::kRBrace, "closing module body");
    Expect(Tok::kSemicolon, "after module");
    return mod;
  }

  std::unique_ptr<Decl> ParseInterfaceOrForward() {
    int line = Peek().line;
    int column = Peek().column;
    Expect(Tok::kKwInterface, "starting interface");
    std::string name = Expect(Tok::kIdentifier, "naming interface").text;
    if (Match(Tok::kSemicolon)) {
      auto fwd = std::make_unique<ForwardInterfaceDecl>();
      fwd->name = std::move(name);
      fwd->line = line;
      fwd->column = column;
      return fwd;
    }
    auto iface = std::make_unique<InterfaceDecl>();
    iface->name = std::move(name);
    iface->line = line;
    iface->column = column;
    if (Match(Tok::kColon)) {
      iface->base_names.push_back(ParseScopedName());
      while (Match(Tok::kComma)) {
        iface->base_names.push_back(ParseScopedName());
      }
    }
    Expect(Tok::kLBrace, "opening interface body");
    while (!Check(Tok::kRBrace)) {
      if (Check(Tok::kEof)) Fail("unterminated interface body");
      ParseExport(*iface);
    }
    Expect(Tok::kRBrace, "closing interface body");
    Expect(Tok::kSemicolon, "after interface");
    return iface;
  }

  void ParseExport(InterfaceDecl& iface) {
    switch (Peek().kind) {
      case Tok::kKwEnum: iface.nested.push_back(ParseEnum()); return;
      case Tok::kKwStruct: iface.nested.push_back(ParseStruct()); return;
      case Tok::kKwUnion: iface.nested.push_back(ParseUnion()); return;
      case Tok::kKwException: iface.nested.push_back(ParseException()); return;
      case Tok::kKwTypedef: iface.nested.push_back(ParseTypedef()); return;
      case Tok::kKwConst: iface.nested.push_back(ParseConst()); return;
      case Tok::kKwReadonly:
      case Tok::kKwAttribute: ParseAttribute(iface); return;
      default: ParseOperation(iface); return;
    }
  }

  void ParseAttribute(InterfaceDecl& iface) {
    AttributeDecl attr;
    attr.line = Peek().line;
    attr.column = Peek().column;
    attr.readonly = Match(Tok::kKwReadonly);
    Expect(Tok::kKwAttribute, "starting attribute");
    attr.type = ParseType(/*allow_void=*/false);
    attr.name = Expect(Tok::kIdentifier, "naming attribute").text;
    iface.member_order.push_back(
        {InterfaceMember::Kind::kAttribute, iface.attributes.size()});
    iface.attributes.push_back(attr);
    // OMG IDL allows `attribute long a, b;`.
    while (Match(Tok::kComma)) {
      AttributeDecl extra = attr;
      extra.name = Expect(Tok::kIdentifier, "naming attribute").text;
      iface.member_order.push_back(
          {InterfaceMember::Kind::kAttribute, iface.attributes.size()});
      iface.attributes.push_back(std::move(extra));
    }
    Expect(Tok::kSemicolon, "after attribute");
  }

  void ParseOperation(InterfaceDecl& iface) {
    OperationDecl op;
    op.line = Peek().line;
    op.column = Peek().column;
    op.oneway = Match(Tok::kKwOneway);
    op.return_type = ParseType(/*allow_void=*/true);
    op.name = Expect(Tok::kIdentifier, "naming operation").text;
    Expect(Tok::kLParen, "opening parameter list");
    if (!Check(Tok::kRParen)) {
      op.params.push_back(ParseParam());
      while (Match(Tok::kComma)) op.params.push_back(ParseParam());
    }
    Expect(Tok::kRParen, "closing parameter list");
    if (Match(Tok::kKwRaises)) {
      Expect(Tok::kLParen, "opening raises list");
      op.raises.push_back(ParseScopedName());
      while (Match(Tok::kComma)) op.raises.push_back(ParseScopedName());
      Expect(Tok::kRParen, "closing raises list");
    }
    Expect(Tok::kSemicolon, "after operation");
    iface.member_order.push_back(
        {InterfaceMember::Kind::kOperation, iface.operations.size()});
    iface.operations.push_back(std::move(op));
  }

  ParamDecl ParseParam() {
    ParamDecl param;
    param.line = Peek().line;
    param.column = Peek().column;
    switch (Peek().kind) {
      case Tok::kKwIn: param.direction = ParamDir::kIn; break;
      case Tok::kKwOut: param.direction = ParamDir::kOut; break;
      case Tok::kKwInout: param.direction = ParamDir::kInOut; break;
      case Tok::kKwIncopy: param.direction = ParamDir::kInCopy; break;
      default: Fail("expected parameter direction (in/out/inout/incopy)");
    }
    Advance();
    param.type = ParseType(/*allow_void=*/false);
    param.name = Expect(Tok::kIdentifier, "naming parameter").text;
    if (Match(Tok::kEquals)) {
      param.default_value = ParseConstExpr();
    }
    return param;
  }

  std::unique_ptr<Decl> ParseEnum() {
    auto en = std::make_unique<EnumDecl>();
    en->line = Peek().line;
    en->column = Peek().column;
    Expect(Tok::kKwEnum, "starting enum");
    en->name = Expect(Tok::kIdentifier, "naming enum").text;
    Expect(Tok::kLBrace, "opening enum body");
    en->members.push_back(Expect(Tok::kIdentifier, "naming enum member").text);
    while (Match(Tok::kComma)) {
      if (Check(Tok::kRBrace)) break;  // tolerate trailing comma
      en->members.push_back(
          Expect(Tok::kIdentifier, "naming enum member").text);
    }
    Expect(Tok::kRBrace, "closing enum body");
    Expect(Tok::kSemicolon, "after enum");
    return en;
  }

  std::vector<StructField> ParseFieldBlock(const char* what) {
    std::vector<StructField> fields;
    Expect(Tok::kLBrace, what);
    while (!Check(Tok::kRBrace)) {
      if (Check(Tok::kEof)) Fail("unterminated body");
      StructField field;
      field.line = Peek().line;
    field.column = Peek().column;
      field.type = ParseType(/*allow_void=*/false);
      field.name = Expect(Tok::kIdentifier, "naming member").text;
      fields.push_back(field);
      while (Match(Tok::kComma)) {
        StructField extra;
        extra.line = Peek().line;
    extra.column = Peek().column;
        extra.type = field.type;
        extra.name = Expect(Tok::kIdentifier, "naming member").text;
        fields.push_back(std::move(extra));
      }
      Expect(Tok::kSemicolon, "after member");
    }
    Expect(Tok::kRBrace, "closing body");
    return fields;
  }

  std::unique_ptr<Decl> ParseStruct() {
    auto st = std::make_unique<StructDecl>();
    st->line = Peek().line;
    st->column = Peek().column;
    Expect(Tok::kKwStruct, "starting struct");
    st->name = Expect(Tok::kIdentifier, "naming struct").text;
    st->fields = ParseFieldBlock("opening struct body");
    if (st->fields.empty()) Fail("struct must have at least one member");
    Expect(Tok::kSemicolon, "after struct");
    return st;
  }

  // union U switch (<disc-type>) { case <const>: [case ...:] <type> <name>;
  //                                 ... default: <type> <name>; };
  std::unique_ptr<Decl> ParseUnion() {
    auto un = std::make_unique<UnionDecl>();
    un->line = Peek().line;
    un->column = Peek().column;
    Expect(Tok::kKwUnion, "starting union");
    un->name = Expect(Tok::kIdentifier, "naming union").text;
    Expect(Tok::kKwSwitch, "after union name");
    Expect(Tok::kLParen, "opening discriminator");
    un->discriminator = ParseType(/*allow_void=*/false);
    Expect(Tok::kRParen, "closing discriminator");
    Expect(Tok::kLBrace, "opening union body");
    while (!Check(Tok::kRBrace)) {
      if (Check(Tok::kEof)) Fail("unterminated union body");
      UnionCase arm;
      arm.line = Peek().line;
    arm.column = Peek().column;
      bool saw_label = false;
      while (true) {
        if (Match(Tok::kKwCase)) {
          arm.labels.push_back(ParseConstExpr());
          Expect(Tok::kColon, "after case label");
          saw_label = true;
          continue;
        }
        if (Match(Tok::kKwDefault)) {
          Expect(Tok::kColon, "after default");
          arm.is_default = true;
          saw_label = true;
          continue;
        }
        break;
      }
      if (!saw_label) Fail("union member needs case/default labels");
      arm.type = ParseType(/*allow_void=*/false);
      arm.name = Expect(Tok::kIdentifier, "naming union member").text;
      Expect(Tok::kSemicolon, "after union member");
      un->cases.push_back(std::move(arm));
    }
    Expect(Tok::kRBrace, "closing union body");
    Expect(Tok::kSemicolon, "after union");
    if (un->cases.empty()) Fail("union must have at least one member");
    return un;
  }

  std::unique_ptr<Decl> ParseException() {
    auto ex = std::make_unique<ExceptionDecl>();
    ex->line = Peek().line;
    ex->column = Peek().column;
    Expect(Tok::kKwException, "starting exception");
    ex->name = Expect(Tok::kIdentifier, "naming exception").text;
    ex->fields = ParseFieldBlock("opening exception body");
    Expect(Tok::kSemicolon, "after exception");
    return ex;
  }

  std::unique_ptr<Decl> ParseTypedef() {
    auto td = std::make_unique<TypedefDecl>();
    td->line = Peek().line;
    td->column = Peek().column;
    Expect(Tok::kKwTypedef, "starting typedef");
    td->type = ParseType(/*allow_void=*/false);
    td->name = Expect(Tok::kIdentifier, "naming typedef").text;
    if (Check(Tok::kLBracket)) Fail("array declarators are not supported");
    Expect(Tok::kSemicolon, "after typedef");
    return td;
  }

  std::unique_ptr<Decl> ParseConst() {
    auto cd = std::make_unique<ConstDecl>();
    cd->line = Peek().line;
    cd->column = Peek().column;
    Expect(Tok::kKwConst, "starting const");
    cd->type = ParseType(/*allow_void=*/false);
    cd->name = Expect(Tok::kIdentifier, "naming const").text;
    Expect(Tok::kEquals, "in const definition");
    cd->value = ParseConstExpr();
    Expect(Tok::kSemicolon, "after const");
    return cd;
  }

  Literal ParseConstExpr() {
    Literal lit;
    bool negate = false;
    if (Match(Tok::kMinus)) {
      negate = true;
    } else {
      Match(Tok::kPlus);
    }
    const Token& tok = Peek();
    switch (tok.kind) {
      case Tok::kIntLit:
        lit.kind = Literal::Kind::kInt;
        lit.int_value = std::strtoll(tok.text.c_str(), nullptr, 0);
        if (negate) lit.int_value = -lit.int_value;
        Advance();
        break;
      case Tok::kFloatLit:
        lit.kind = Literal::Kind::kFloat;
        lit.float_value = std::strtod(tok.text.c_str(), nullptr);
        if (negate) lit.float_value = -lit.float_value;
        Advance();
        break;
      case Tok::kKwTrue:
      case Tok::kKwFalse:
        if (negate) Fail("cannot negate a boolean literal");
        lit.kind = Literal::Kind::kBool;
        lit.bool_value = tok.kind == Tok::kKwTrue;
        Advance();
        break;
      case Tok::kStringLit:
        if (negate) Fail("cannot negate a string literal");
        lit.kind = Literal::Kind::kString;
        lit.text = tok.text;
        Advance();
        break;
      case Tok::kCharLit:
        if (negate) Fail("cannot negate a character literal");
        lit.kind = Literal::Kind::kChar;
        lit.text = tok.text;
        Advance();
        break;
      case Tok::kIdentifier:
      case Tok::kScope:
        if (negate) Fail("cannot negate a scoped name");
        lit.kind = Literal::Kind::kScoped;
        lit.text = ParseScopedName();
        break;
      default:
        Fail("expected a constant expression");
    }
    return lit;
  }

  std::string ParseScopedName() {
    std::string name;
    if (Match(Tok::kScope)) name = "::";
    name += Expect(Tok::kIdentifier, "in scoped name").text;
    while (Check(Tok::kScope)) {
      Advance();
      name += "::";
      name += Expect(Tok::kIdentifier, "in scoped name").text;
    }
    return name;
  }

  TypeRef ParseType(bool allow_void) {
    switch (Peek().kind) {
      case Tok::kKwVoid:
        if (!allow_void) Fail("'void' is only valid as a return type");
        Advance();
        return TypeRef::Primitive(PrimKind::kVoid);
      case Tok::kKwBoolean:
        Advance();
        return TypeRef::Primitive(PrimKind::kBoolean);
      case Tok::kKwChar:
        Advance();
        return TypeRef::Primitive(PrimKind::kChar);
      case Tok::kKwOctet:
        Advance();
        return TypeRef::Primitive(PrimKind::kOctet);
      case Tok::kKwFloat:
        Advance();
        return TypeRef::Primitive(PrimKind::kFloat);
      case Tok::kKwDouble:
        Advance();
        return TypeRef::Primitive(PrimKind::kDouble);
      case Tok::kKwShort:
        Advance();
        return TypeRef::Primitive(PrimKind::kShort);
      case Tok::kKwLong:
        Advance();
        if (Match(Tok::kKwLong)) return TypeRef::Primitive(PrimKind::kLongLong);
        if (Check(Tok::kKwDouble))
          Fail("'long double' is not supported");
        return TypeRef::Primitive(PrimKind::kLong);
      case Tok::kKwUnsigned: {
        Advance();
        if (Match(Tok::kKwShort)) return TypeRef::Primitive(PrimKind::kUShort);
        Expect(Tok::kKwLong, "after 'unsigned'");
        if (Match(Tok::kKwLong))
          return TypeRef::Primitive(PrimKind::kULongLong);
        return TypeRef::Primitive(PrimKind::kULong);
      }
      case Tok::kKwString: {
        Advance();
        TypeRef t = TypeRef::Primitive(PrimKind::kString);
        if (Match(Tok::kLess)) {
          const Token& bound = Expect(Tok::kIntLit, "as string bound");
          t.string_bound = std::strtoull(bound.text.c_str(), nullptr, 0);
          if (t.string_bound == 0) Fail("string bound must be positive");
          Expect(Tok::kGreater, "closing string bound");
        }
        return t;
      }
      case Tok::kKwSequence: {
        Advance();
        Expect(Tok::kLess, "opening sequence element type");
        TypeRef element = ParseType(/*allow_void=*/false);
        uint64_t bound = 0;
        if (Match(Tok::kComma)) {
          const Token& b = Expect(Tok::kIntLit, "as sequence bound");
          bound = std::strtoull(b.text.c_str(), nullptr, 0);
          if (bound == 0) Fail("sequence bound must be positive");
        }
        Expect(Tok::kGreater, "closing sequence");
        return TypeRef::Sequence(std::move(element), bound);
      }
      case Tok::kIdentifier:
      case Tok::kScope:
        return TypeRef::Named(ParseScopedName());
      default:
        Fail("expected a type");
    }
  }

  Lexer lexer_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Specification Parse(std::string_view source, std::string source_name) {
  Parser parser(source, std::move(source_name));
  return parser.ParseSpecification();
}

}  // namespace heidi::idl
