// Recursive-descent parser producing a Specification (see ast.h).
//
// The accepted grammar is the OMG IDL subset used throughout the paper —
// modules, interfaces (with multiple inheritance, forward declarations,
// nested type declarations), enums, structs, exceptions, typedefs, consts,
// attributes and operations — extended with the paper's `incopy` parameter
// direction and `= <const-expr>` default parameter values (§3.1).
//
// Out of scope (rejected with a clear error): unions, arrays, `any`,
// fixed-point, valuetypes, and contexts. DESIGN.md records this bound.
#pragma once

#include <memory>
#include <string_view>

#include "idl/ast.h"

namespace heidi::idl {

// Parses `source`; throws ParseError (with file:line:col) on any lexical,
// syntactic, or structural error.
Specification Parse(std::string_view source,
                    std::string source_name = "<input>");

}  // namespace heidi::idl
