// Token definitions for the OMG IDL subset accepted by the compiler,
// including the paper's two syntax extensions: the `incopy` parameter
// qualifier and default parameter values (§3.1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace heidi::idl {

enum class Tok : uint8_t {
  kEof,
  kIdentifier,
  kIntLit,     // decimal / hex / octal integer
  kFloatLit,   // floating literal
  kStringLit,  // "..."
  kCharLit,    // '.'

  // Punctuation.
  kLBrace,     // {
  kRBrace,     // }
  kLParen,     // (
  kRParen,     // )
  kLBracket,   // [
  kRBracket,   // ]
  kLess,       // <
  kGreater,    // >
  kComma,      // ,
  kSemicolon,  // ;
  kColon,      // :
  kScope,      // ::
  kEquals,     // =
  kMinus,      // -
  kPlus,       // +

  // Keywords.
  kKwModule,
  kKwInterface,
  kKwEnum,
  kKwStruct,
  kKwException,
  kKwUnion,
  kKwSwitch,
  kKwCase,
  kKwDefault,
  kKwTypedef,
  kKwConst,
  kKwSequence,
  kKwString,
  kKwVoid,
  kKwIn,
  kKwOut,
  kKwInout,
  kKwIncopy,  // paper extension: pass-by-value qualifier
  kKwReadonly,
  kKwAttribute,
  kKwOneway,
  kKwRaises,
  kKwUnsigned,
  kKwShort,
  kKwLong,
  kKwFloat,
  kKwDouble,
  kKwBoolean,
  kKwChar,
  kKwOctet,
  kKwTrue,
  kKwFalse,
};

// Human-readable token-kind name for diagnostics ("identifier", "'{'", ...).
std::string_view TokName(Tok kind);

// Returns the keyword token for `text`, or kIdentifier if it is not a
// keyword. IDL keywords are case-sensitive; TRUE/FALSE are uppercase.
Tok ClassifyWord(std::string_view text);

struct Token {
  Tok kind = Tok::kEof;
  std::string text;  // identifier/literal spelling (unquoted for strings)
  int line = 0;
  int column = 0;
};

}  // namespace heidi::idl
