#include "idl/ast.h"

namespace heidi::idl {

std::string_view PrimName(PrimKind kind) {
  switch (kind) {
    case PrimKind::kVoid: return "void";
    case PrimKind::kBoolean: return "boolean";
    case PrimKind::kChar: return "char";
    case PrimKind::kOctet: return "octet";
    case PrimKind::kShort: return "short";
    case PrimKind::kUShort: return "unsigned short";
    case PrimKind::kLong: return "long";
    case PrimKind::kULong: return "unsigned long";
    case PrimKind::kLongLong: return "long long";
    case PrimKind::kULongLong: return "unsigned long long";
    case PrimKind::kFloat: return "float";
    case PrimKind::kDouble: return "double";
    case PrimKind::kString: return "string";
  }
  return "?";
}

std::string_view ParamDirName(ParamDir dir) {
  switch (dir) {
    case ParamDir::kIn: return "in";
    case ParamDir::kOut: return "out";
    case ParamDir::kInOut: return "inout";
    case ParamDir::kInCopy: return "incopy";
  }
  return "?";
}

namespace {
std::string JoinScope(const Decl* decl, const char* sep) {
  if (decl == nullptr) return "";
  std::string prefix = JoinScope(decl->enclosing, sep);
  if (prefix.empty()) return decl->name;
  return prefix + sep + decl->name;
}
}  // namespace

std::string Decl::ScopedName() const { return JoinScope(this, "::"); }
std::string Decl::FlatName() const { return JoinScope(this, "_"); }

}  // namespace heidi::idl
