#include "idl/lexer.h"

#include <cctype>
#include <sstream>

#include "support/error.h"
#include "support/strings.h"

namespace heidi::idl {

Lexer::Lexer(std::string_view source, std::string source_name)
    : src_(source), source_name_(std::move(source_name)) {}

char Lexer::Peek(size_t ahead) const {
  return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char Lexer::Advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Lexer::Fail(const std::string& msg) const {
  std::ostringstream os;
  os << source_name_ << ":" << line_ << ":" << column_ << ": " << msg;
  throw ParseError(os.str());
}

void Lexer::SkipTrivia() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '/' && Peek(1) == '/') {
      while (!AtEnd() && Peek() != '\n') Advance();
    } else if (c == '/' && Peek(1) == '*') {
      Advance();
      Advance();
      while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) Advance();
      if (AtEnd()) Fail("unterminated block comment");
      Advance();
      Advance();
    } else if (c == '#' && column_ == 1) {
      // Only `#pragma prefix "..."` is honoured; everything else on a
      // preprocessor line is an error to avoid silently mis-parsing.
      std::string directive;
      while (!AtEnd() && Peek() != '\n') directive.push_back(Advance());
      auto trimmed = str::Trim(directive);
      if (str::StartsWith(trimmed, "#pragma")) {
        auto rest = str::Trim(trimmed.substr(7));
        if (str::StartsWith(rest, "prefix")) {
          auto value = str::Trim(rest.substr(6));
          if (value.size() >= 2 && value.front() == '"' &&
              value.back() == '"') {
            pragma_prefix_ = std::string(value.substr(1, value.size() - 2));
          } else {
            Fail("malformed #pragma prefix (expected quoted string)");
          }
        }
        // Unknown pragmas are ignored, as most IDL compilers do.
      } else {
        Fail("unsupported preprocessor directive: " + std::string(trimmed));
      }
    } else {
      return;
    }
  }
}

Token Lexer::MakeWord() {
  Token tok;
  tok.line = line_;
  tok.column = column_;
  std::string word;
  while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                      Peek() == '_')) {
    word.push_back(Advance());
  }
  tok.kind = ClassifyWord(word);
  tok.text = std::move(word);
  return tok;
}

Token Lexer::MakeNumber() {
  Token tok;
  tok.line = line_;
  tok.column = column_;
  std::string num;
  bool is_float = false;
  if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
    num.push_back(Advance());
    num.push_back(Advance());
    if (!std::isxdigit(static_cast<unsigned char>(Peek())))
      Fail("malformed hex literal");
    while (std::isxdigit(static_cast<unsigned char>(Peek())))
      num.push_back(Advance());
  } else {
    while (std::isdigit(static_cast<unsigned char>(Peek())))
      num.push_back(Advance());
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_float = true;
      num.push_back(Advance());
      while (std::isdigit(static_cast<unsigned char>(Peek())))
        num.push_back(Advance());
    }
    if (Peek() == 'e' || Peek() == 'E') {
      char next = Peek(1);
      char next2 = Peek(2);
      if (std::isdigit(static_cast<unsigned char>(next)) ||
          ((next == '+' || next == '-') &&
           std::isdigit(static_cast<unsigned char>(next2)))) {
        is_float = true;
        num.push_back(Advance());
        if (Peek() == '+' || Peek() == '-') num.push_back(Advance());
        while (std::isdigit(static_cast<unsigned char>(Peek())))
          num.push_back(Advance());
      }
    }
  }
  tok.kind = is_float ? Tok::kFloatLit : Tok::kIntLit;
  tok.text = std::move(num);
  return tok;
}

Token Lexer::MakeString() {
  Token tok;
  tok.kind = Tok::kStringLit;
  tok.line = line_;
  tok.column = column_;
  Advance();  // opening quote
  std::string value;
  while (true) {
    if (AtEnd()) Fail("unterminated string literal");
    char c = Advance();
    if (c == '"') break;
    if (c == '\n') Fail("newline in string literal");
    if (c == '\\') {
      if (AtEnd()) Fail("unterminated escape in string literal");
      char e = Advance();
      switch (e) {
        case 'n': value.push_back('\n'); break;
        case 't': value.push_back('\t'); break;
        case 'r': value.push_back('\r'); break;
        case '0': value.push_back('\0'); break;
        case '\\': value.push_back('\\'); break;
        case '"': value.push_back('"'); break;
        case '\'': value.push_back('\''); break;
        default: Fail(std::string("unknown escape '\\") + e + "'");
      }
    } else {
      value.push_back(c);
    }
  }
  tok.text = std::move(value);
  return tok;
}

Token Lexer::MakeChar() {
  Token tok;
  tok.kind = Tok::kCharLit;
  tok.line = line_;
  tok.column = column_;
  Advance();  // opening quote
  if (AtEnd()) Fail("unterminated character literal");
  char c = Advance();
  if (c == '\\') {
    if (AtEnd()) Fail("unterminated character literal");
    char e = Advance();
    switch (e) {
      case 'n': c = '\n'; break;
      case 't': c = '\t'; break;
      case 'r': c = '\r'; break;
      case '0': c = '\0'; break;
      case '\\': c = '\\'; break;
      case '\'': c = '\''; break;
      case '"': c = '"'; break;
      default: Fail(std::string("unknown escape '\\") + e + "'");
    }
  }
  if (AtEnd() || Advance() != '\'') Fail("unterminated character literal");
  tok.text = std::string(1, c);
  return tok;
}

Token Lexer::Next() {
  SkipTrivia();
  Token tok;
  tok.line = line_;
  tok.column = column_;
  if (AtEnd()) {
    tok.kind = Tok::kEof;
    return tok;
  }
  char c = Peek();
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
    return MakeWord();
  if (std::isdigit(static_cast<unsigned char>(c))) return MakeNumber();
  if (c == '"') return MakeString();
  if (c == '\'') return MakeChar();

  Advance();
  switch (c) {
    case '{': tok.kind = Tok::kLBrace; break;
    case '}': tok.kind = Tok::kRBrace; break;
    case '(': tok.kind = Tok::kLParen; break;
    case ')': tok.kind = Tok::kRParen; break;
    case '[': tok.kind = Tok::kLBracket; break;
    case ']': tok.kind = Tok::kRBracket; break;
    case '<': tok.kind = Tok::kLess; break;
    case '>': tok.kind = Tok::kGreater; break;
    case ',': tok.kind = Tok::kComma; break;
    case ';': tok.kind = Tok::kSemicolon; break;
    case '=': tok.kind = Tok::kEquals; break;
    case '-': tok.kind = Tok::kMinus; break;
    case '+': tok.kind = Tok::kPlus; break;
    case ':':
      if (Peek() == ':') {
        Advance();
        tok.kind = Tok::kScope;
      } else {
        tok.kind = Tok::kColon;
      }
      break;
    default:
      Fail(std::string("unexpected character '") + c + "'");
  }
  tok.text = std::string(1, c);
  return tok;
}

std::vector<Token> Lexer::Tokenize() {
  std::vector<Token> out;
  while (true) {
    out.push_back(Next());
    if (out.back().kind == Tok::kEof) return out;
  }
}

}  // namespace heidi::idl
