#include "idl/token.h"

#include <unordered_map>

namespace heidi::idl {

std::string_view TokName(Tok kind) {
  switch (kind) {
    case Tok::kEof: return "end of input";
    case Tok::kIdentifier: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kFloatLit: return "float literal";
    case Tok::kStringLit: return "string literal";
    case Tok::kCharLit: return "character literal";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kLess: return "'<'";
    case Tok::kGreater: return "'>'";
    case Tok::kComma: return "','";
    case Tok::kSemicolon: return "';'";
    case Tok::kColon: return "':'";
    case Tok::kScope: return "'::'";
    case Tok::kEquals: return "'='";
    case Tok::kMinus: return "'-'";
    case Tok::kPlus: return "'+'";
    case Tok::kKwModule: return "'module'";
    case Tok::kKwInterface: return "'interface'";
    case Tok::kKwEnum: return "'enum'";
    case Tok::kKwStruct: return "'struct'";
    case Tok::kKwException: return "'exception'";
    case Tok::kKwUnion: return "'union'";
    case Tok::kKwSwitch: return "'switch'";
    case Tok::kKwCase: return "'case'";
    case Tok::kKwDefault: return "'default'";
    case Tok::kKwTypedef: return "'typedef'";
    case Tok::kKwConst: return "'const'";
    case Tok::kKwSequence: return "'sequence'";
    case Tok::kKwString: return "'string'";
    case Tok::kKwVoid: return "'void'";
    case Tok::kKwIn: return "'in'";
    case Tok::kKwOut: return "'out'";
    case Tok::kKwInout: return "'inout'";
    case Tok::kKwIncopy: return "'incopy'";
    case Tok::kKwReadonly: return "'readonly'";
    case Tok::kKwAttribute: return "'attribute'";
    case Tok::kKwOneway: return "'oneway'";
    case Tok::kKwRaises: return "'raises'";
    case Tok::kKwUnsigned: return "'unsigned'";
    case Tok::kKwShort: return "'short'";
    case Tok::kKwLong: return "'long'";
    case Tok::kKwFloat: return "'float'";
    case Tok::kKwDouble: return "'double'";
    case Tok::kKwBoolean: return "'boolean'";
    case Tok::kKwChar: return "'char'";
    case Tok::kKwOctet: return "'octet'";
    case Tok::kKwTrue: return "'TRUE'";
    case Tok::kKwFalse: return "'FALSE'";
  }
  return "?";
}

Tok ClassifyWord(std::string_view text) {
  static const std::unordered_map<std::string_view, Tok> kKeywords = {
      {"module", Tok::kKwModule},       {"interface", Tok::kKwInterface},
      {"enum", Tok::kKwEnum},           {"struct", Tok::kKwStruct},
      {"exception", Tok::kKwException},
      {"union", Tok::kKwUnion},         {"switch", Tok::kKwSwitch},
      {"case", Tok::kKwCase},           {"default", Tok::kKwDefault}, {"typedef", Tok::kKwTypedef},
      {"const", Tok::kKwConst},         {"sequence", Tok::kKwSequence},
      {"string", Tok::kKwString},       {"void", Tok::kKwVoid},
      {"in", Tok::kKwIn},               {"out", Tok::kKwOut},
      {"inout", Tok::kKwInout},         {"incopy", Tok::kKwIncopy},
      {"readonly", Tok::kKwReadonly},   {"attribute", Tok::kKwAttribute},
      {"oneway", Tok::kKwOneway},       {"raises", Tok::kKwRaises},
      {"unsigned", Tok::kKwUnsigned},   {"short", Tok::kKwShort},
      {"long", Tok::kKwLong},           {"float", Tok::kKwFloat},
      {"double", Tok::kKwDouble},       {"boolean", Tok::kKwBoolean},
      {"char", Tok::kKwChar},           {"octet", Tok::kKwOctet},
      {"TRUE", Tok::kKwTrue},           {"FALSE", Tok::kKwFalse},
  };
  auto it = kKeywords.find(text);
  return it == kKeywords.end() ? Tok::kIdentifier : it->second;
}

}  // namespace heidi::idl
