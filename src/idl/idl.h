// Umbrella header for the IDL front-end: lexer, parser, AST, semantic
// analysis. Typical use:
//
//   heidi::idl::Specification spec =
//       heidi::idl::ParseAndResolve(source_text, "A.idl");
//
// followed by heidi::est::BuildEst(spec) to obtain the tree templates walk.
#pragma once

#include "idl/ast.h"      // IWYU pragma: export
#include "idl/lexer.h"    // IWYU pragma: export
#include "idl/parser.h"   // IWYU pragma: export
#include "idl/sema.h"     // IWYU pragma: export
#include "idl/token.h"    // IWYU pragma: export
