// Abstract syntax tree for the IDL subset.
//
// The parser produces this tree in source order (attributes and operations
// interleaved exactly as written — the paper's Fig 3 example deliberately
// interleaves them); the EST builder later regroups like nodes. Semantic
// analysis decorates the tree in place: it resolves named type references,
// links interface bases, and assigns repository ids.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace heidi::idl {

struct Decl;
struct InterfaceDecl;

// ---------------------------------------------------------------------------
// Types

enum class PrimKind : uint8_t {
  kVoid,
  kBoolean,
  kChar,
  kOctet,
  kShort,
  kUShort,
  kLong,
  kULong,
  kLongLong,
  kULongLong,
  kFloat,
  kDouble,
  kString,
};

// IDL spelling of a primitive kind ("unsigned long", "boolean", ...).
std::string_view PrimName(PrimKind kind);

// A (possibly unresolved) reference to a type.
struct TypeRef {
  enum class Kind : uint8_t {
    kPrimitive,  // prim is valid
    kNamed,      // name is valid; resolved filled in by sema
    kSequence,   // element is valid; bound != 0 for bounded sequences
  };

  Kind kind = Kind::kPrimitive;
  PrimKind prim = PrimKind::kVoid;
  std::string name;              // scoped name as written ("Heidi::Status")
  const Decl* resolved = nullptr;  // set by sema for kNamed
  std::unique_ptr<TypeRef> element;  // sequence element type
  uint64_t bound = 0;                // sequence bound; 0 = unbounded
  uint64_t string_bound = 0;         // bounded string<N>; 0 = unbounded

  static TypeRef Primitive(PrimKind p) {
    TypeRef t;
    t.kind = Kind::kPrimitive;
    t.prim = p;
    return t;
  }
  static TypeRef Named(std::string scoped_name) {
    TypeRef t;
    t.kind = Kind::kNamed;
    t.name = std::move(scoped_name);
    return t;
  }
  static TypeRef Sequence(TypeRef element_type, uint64_t bound_value = 0) {
    TypeRef t;
    t.kind = Kind::kSequence;
    t.element = std::make_unique<TypeRef>(std::move(element_type));
    t.bound = bound_value;
    return t;
  }

  TypeRef() = default;
  TypeRef(TypeRef&&) = default;
  TypeRef& operator=(TypeRef&&) = default;
  TypeRef(const TypeRef& other) { *this = other; }
  TypeRef& operator=(const TypeRef& other) {
    if (this == &other) return *this;
    kind = other.kind;
    prim = other.prim;
    name = other.name;
    resolved = other.resolved;
    bound = other.bound;
    string_bound = other.string_bound;
    element = other.element ? std::make_unique<TypeRef>(*other.element)
                            : nullptr;
    return *this;
  }
};

// ---------------------------------------------------------------------------
// Literals (const values, default parameter values)

struct Literal {
  enum class Kind : uint8_t {
    kNone,
    kInt,     // int_value
    kFloat,   // float_value
    kBool,    // bool_value
    kString,  // text
    kChar,    // text (single char)
    kScoped,  // text is a scoped name, e.g. an enum member (Heidi::Start)
  };

  Kind kind = Kind::kNone;
  int64_t int_value = 0;
  double float_value = 0.0;
  bool bool_value = false;
  std::string text;

  bool IsSet() const { return kind != Kind::kNone; }
};

// ---------------------------------------------------------------------------
// Declarations

enum class DeclKind : uint8_t {
  kModule,
  kInterface,
  kForwardInterface,
  kEnum,
  kStruct,
  kUnion,
  kException,
  kTypedef,
  kConst,
};

struct Decl {
  DeclKind decl_kind;
  std::string name;          // unscoped
  Decl* enclosing = nullptr;  // lexical scope (module or interface); null at top level
  std::string repo_id;        // "IDL:Scope/Name:1.0", set by sema
  int line = 0;
  int column = 0;  // 1-based column of the introducing token

  explicit Decl(DeclKind k) : decl_kind(k) {}
  virtual ~Decl() = default;

  // "Heidi::A" — scoped name with '::' separators, computed from enclosing.
  std::string ScopedName() const;
  // "Heidi_A" — scoped name with '_' separators (used by EST/type names).
  std::string FlatName() const;
};

enum class ParamDir : uint8_t { kIn, kOut, kInOut, kInCopy };
std::string_view ParamDirName(ParamDir dir);

struct ParamDecl {
  ParamDir direction = ParamDir::kIn;
  TypeRef type;
  std::string name;
  Literal default_value;  // paper extension; kNone if absent
  int line = 0;
  int column = 0;
};

struct OperationDecl {
  bool oneway = false;
  TypeRef return_type;
  std::string name;
  std::vector<ParamDecl> params;
  std::vector<std::string> raises;  // exception scoped names as written
  std::vector<const Decl*> raises_resolved;  // filled by sema
  int line = 0;
  int column = 0;
};

struct AttributeDecl {
  bool readonly = false;
  TypeRef type;
  std::string name;
  int line = 0;
  int column = 0;
};

// Interface members in source order, so generated code can preserve or
// regroup ordering as the mapping dictates.
struct InterfaceMember {
  enum class Kind : uint8_t { kOperation, kAttribute } kind;
  size_t index;  // into operations / attributes
};

struct InterfaceDecl : Decl {
  InterfaceDecl() : Decl(DeclKind::kInterface) {}

  // Bases as written, and as resolved by sema. A base is either an
  // InterfaceDecl, or a ForwardInterfaceDecl for an *external* interface
  // (forward-declared, never defined in this translation unit — the
  // paper's Fig 3 inherits Heidi::A from such an external Heidi::S).
  std::vector<std::string> base_names;
  std::vector<const Decl*> bases;
  std::vector<OperationDecl> operations;
  std::vector<AttributeDecl> attributes;
  std::vector<InterfaceMember> member_order;
  std::vector<std::unique_ptr<Decl>> nested;  // types declared inside
};

struct ForwardInterfaceDecl : Decl {
  ForwardInterfaceDecl() : Decl(DeclKind::kForwardInterface) {}
  const InterfaceDecl* definition = nullptr;  // linked by sema if defined
};

struct ModuleDecl : Decl {
  ModuleDecl() : Decl(DeclKind::kModule) {}
  std::vector<std::unique_ptr<Decl>> decls;
};

struct EnumDecl : Decl {
  EnumDecl() : Decl(DeclKind::kEnum) {}
  std::vector<std::string> members;
};

struct StructField {
  TypeRef type;
  std::string name;
  int line = 0;
  int column = 0;
};

struct StructDecl : Decl {
  StructDecl() : Decl(DeclKind::kStruct) {}
  std::vector<StructField> fields;
};

struct ExceptionDecl : Decl {
  ExceptionDecl() : Decl(DeclKind::kException) {}
  std::vector<StructField> fields;
};

// One arm of a discriminated union: `case L1: case L2: T name;` or the
// `default:` arm (labels empty, is_default set).
struct UnionCase {
  std::vector<Literal> labels;
  bool is_default = false;
  TypeRef type;
  std::string name;
  int line = 0;
  int column = 0;
};

struct UnionDecl : Decl {
  UnionDecl() : Decl(DeclKind::kUnion) {}
  TypeRef discriminator;  // integral, char, boolean, or enum
  std::vector<UnionCase> cases;
};

struct TypedefDecl : Decl {
  TypedefDecl() : Decl(DeclKind::kTypedef) {}
  TypeRef type;
};

struct ConstDecl : Decl {
  ConstDecl() : Decl(DeclKind::kConst) {}
  TypeRef type;
  Literal value;
};

// A parsed translation unit.
struct Specification {
  std::string source_name;
  std::string pragma_prefix;  // from #pragma prefix, may be empty
  std::vector<std::unique_ptr<Decl>> decls;
};

}  // namespace heidi::idl
