#include "demo/stubs.h"

#include "orb/orb.h"

namespace heidi::demo {

HD_DEFINE_TYPE(S_stub, "IDL:Heidi/S:1.0", &::heidi::HdObject::TypeInfo())
HD_DEFINE_TYPE(A_stub, "IDL:Heidi/A:1.0", &S_stub::TypeInfo())
HD_DEFINE_TYPE(Echo_stub, "IDL:Heidi/Echo:1.0",
               &::heidi::HdObject::TypeInfo())

// ---------------------------------------------------------------------------
// S_stub

void S_stub::ping() {
  auto call = NewCall("ping");
  Invoke(std::move(call));
}

long S_stub::value() {
  auto call = NewCall("value");
  auto reply = Invoke(std::move(call));
  return reply->GetLong();
}

// ---------------------------------------------------------------------------
// A_stub

void A_stub::f(HdA* a) {
  auto call = NewCall("f");
  GetOrb().PutObject(*call, a, "IDL:Heidi/A:1.0");
  Invoke(std::move(call));
}

void A_stub::g(HdS* s) {
  auto call = NewCall("g");
  GetOrb().PutObject(*call, s, "IDL:Heidi/S:1.0", /*incopy=*/true);
  Invoke(std::move(call));
}

void A_stub::p(long l) {
  auto call = NewCall("p");
  call->PutLong(static_cast<int32_t>(l));
  Invoke(std::move(call));
}

void A_stub::q(HdStatus s) {
  auto call = NewCall("q");
  call->PutEnum(static_cast<int32_t>(s));
  Invoke(std::move(call));
}

void A_stub::s(XBool b) {
  auto call = NewCall("s");
  call->PutBoolean(b);
  Invoke(std::move(call));
}

void A_stub::t(HdSSequence* seq) {
  auto call = NewCall("t");
  call->Begin("seq");
  call->PutLength(seq == nullptr ? 0 : static_cast<uint32_t>(seq->Size()));
  if (seq != nullptr) {
    for (HdS* element : *seq) {
      GetOrb().PutObject(*call, element, "IDL:Heidi/S:1.0");
    }
  }
  call->End();
  Invoke(std::move(call));
}

HdStatus A_stub::GetButton() {
  auto call = NewCall("_get_button");
  auto reply = Invoke(std::move(call));
  return static_cast<HdStatus>(reply->GetEnum());
}

// ---------------------------------------------------------------------------
// Echo_stub

HdString Echo_stub::echo(HdStringView msg) {
  auto call = NewCall("echo");
  call->PutString(msg);
  auto reply = Invoke(std::move(call));
  return reply->GetString();
}

long Echo_stub::add(long a, long b) {
  auto call = NewCall("add");
  call->PutLong(static_cast<int32_t>(a));
  call->PutLong(static_cast<int32_t>(b));
  auto reply = Invoke(std::move(call));
  return reply->GetLong();
}

double Echo_stub::norm(double x, double y) {
  auto call = NewCall("norm");
  call->PutDouble(x);
  call->PutDouble(y);
  auto reply = Invoke(std::move(call));
  return reply->GetDouble();
}

XBool Echo_stub::flip(XBool b) {
  auto call = NewCall("flip");
  call->PutBoolean(b);
  auto reply = Invoke(std::move(call));
  return XBool(reply->GetBoolean());
}

void Echo_stub::post(HdStringView event) {
  auto call = NewCall("post", /*oneway=*/true);
  call->PutString(event);
  InvokeOneway(std::move(call));
}

HdString Echo_stub::blob(HdBytesView data) {
  auto call = NewCall("blob");
  call->PutBytes(data);
  auto reply = Invoke(std::move(call));
  return reply->GetBytes();
}

}  // namespace heidi::demo
