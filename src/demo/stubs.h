// Hand-materialized heidi_cpp stubs for demo.idl (§3.1: "All stubs
// inherit from a base HdStub class ... a stub also implements the C++
// mapping of the IDL interface, and reflects the IDL inheritance
// structure": A_stub inherits from S_stub and implements A's methods).
#pragma once

#include "demo/interfaces.h"
#include "orb/orb_api.h"

namespace heidi::demo {

class S_stub : public virtual HdS, public virtual orb::HdStub {
 public:
  S_stub(orb::Orb& o, orb::ObjectRef ref)
      : orb::HdStub(o, std::move(ref)) {}
  HD_DECLARE_TYPE();

  void ping() override;
  long value() override;

 protected:
  // For derived stubs: the HdStub virtual base is initialized by the
  // most-derived class.
  S_stub() = default;
};

class A_stub : public virtual HdA, public S_stub {
 public:
  A_stub(orb::Orb& o, orb::ObjectRef ref)
      : orb::HdStub(o, std::move(ref)) {}
  HD_DECLARE_TYPE();

  void f(HdA* a) override;
  void g(HdS* s) override;
  void p(long l) override;
  void q(HdStatus s) override;
  void s(XBool b) override;
  void t(HdSSequence* seq) override;
  HdStatus GetButton() override;
};

class Echo_stub : public virtual HdEcho, public virtual orb::HdStub {
 public:
  Echo_stub(orb::Orb& o, orb::ObjectRef ref)
      : orb::HdStub(o, std::move(ref)) {}
  HD_DECLARE_TYPE();

  HdString echo(HdStringView msg) override;
  long add(long a, long b) override;
  double norm(double x, double y) override;
  XBool flip(XBool b) override;
  void post(HdStringView event) override;
  HdString blob(HdBytesView data) override;
};

}  // namespace heidi::demo
