#include "demo/skels.h"

#include <vector>

#include "orb/orb.h"
#include "support/error.h"

namespace heidi::demo {

namespace {

// Casts an unmarshaled object parameter to the expected interface.
template <typename T>
T* CastParam(const std::shared_ptr<::heidi::HdObject>& holder,
             const char* what) {
  if (holder == nullptr) return nullptr;
  T* typed = dynamic_cast<T*>(holder.get());
  if (typed == nullptr) {
    throw ::heidi::MarshalError(std::string("object parameter is not a ") +
                                what);
  }
  return typed;
}

}  // namespace

// ---------------------------------------------------------------------------
// S_skel

S_skel::S_skel(orb::Orb& o, ::heidi::HdObject* impl)
    : orb::HdSkeleton(o, impl), table_(o.Options().dispatch) {
  obj_ = dynamic_cast<HdS*>(impl);
  if (obj_ == nullptr) {
    throw ::heidi::DispatchError(
        "implementation object does not implement HdS");
  }
  table_.Add("ping", [this](wire::Call&, wire::Call&) { obj_->ping(); });
  table_.Add("value", [this](wire::Call&, wire::Call& out) {
    out.PutLong(static_cast<int32_t>(obj_->value()));
  });
  table_.Seal();
}

bool S_skel::Dispatch(const std::string& op, wire::Call& in,
                      wire::Call& out) {
  if (const auto* handler = table_.Find(op)) {
    (*handler)(in, out);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// A_skel

A_skel::A_skel(orb::Orb& o, ::heidi::HdObject* impl)
    : S_skel(o, impl), table_(o.Options().dispatch) {
  obj_ = dynamic_cast<HdA*>(impl);
  if (obj_ == nullptr) {
    throw ::heidi::DispatchError(
        "implementation object does not implement HdA");
  }
  table_.Add("f", [this](wire::Call& in, wire::Call&) {
    auto holder = GetOrb().GetObject(in);
    obj_->f(CastParam<HdA>(holder, "HdA"));
  });
  table_.Add("g", [this](wire::Call& in, wire::Call&) {
    auto holder = GetOrb().GetObject(in);
    obj_->g(CastParam<HdS>(holder, "HdS"));
  });
  table_.Add("p", [this](wire::Call& in, wire::Call&) {
    obj_->p(in.GetLong());
  });
  table_.Add("q", [this](wire::Call& in, wire::Call&) {
    obj_->q(static_cast<HdStatus>(in.GetEnum()));
  });
  table_.Add("s", [this](wire::Call& in, wire::Call&) {
    obj_->s(XBool(in.GetBoolean()));
  });
  table_.Add("t", [this](wire::Call& in, wire::Call&) {
    in.Begin("seq");
    uint32_t n = in.GetLength();
    HdSSequence seq;
    std::vector<std::shared_ptr<::heidi::HdObject>> holders;
    holders.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      auto holder = GetOrb().GetObject(in);
      seq.Append(CastParam<HdS>(holder, "HdS"));
      holders.push_back(std::move(holder));
    }
    in.End();
    obj_->t(&seq);
  });
  table_.Add("_get_button", [this](wire::Call&, wire::Call& out) {
    out.PutEnum(static_cast<int32_t>(obj_->GetButton()));
  });
  table_.Seal();
}

bool A_skel::Dispatch(const std::string& op, wire::Call& in,
                      wire::Call& out) {
  if (const auto* handler = table_.Find(op)) {
    (*handler)(in, out);
    return true;
  }
  // Delegate up the skeleton hierarchy, as the paper prescribes.
  return S_skel::Dispatch(op, in, out);
}

// ---------------------------------------------------------------------------
// Echo_skel

Echo_skel::Echo_skel(orb::Orb& o, ::heidi::HdObject* impl)
    : orb::HdSkeleton(o, impl), table_(o.Options().dispatch) {
  obj_ = dynamic_cast<HdEcho*>(impl);
  if (obj_ == nullptr) {
    throw ::heidi::DispatchError(
        "implementation object does not implement HdEcho");
  }
  // View-mapped handlers: `in` strings/octet sequences unmarshal as
  // views straight into the retained frame slab (no copy); the views die
  // when the dispatch returns.
  table_.Add("echo", [this](wire::Call& in, wire::Call& out) {
    out.PutString(obj_->echo(in.GetStringView()));
  });
  table_.Add("add", [this](wire::Call& in, wire::Call& out) {
    int32_t a = in.GetLong();
    int32_t b = in.GetLong();
    out.PutLong(static_cast<int32_t>(obj_->add(a, b)));
  });
  table_.Add("norm", [this](wire::Call& in, wire::Call& out) {
    double x = in.GetDouble();
    double y = in.GetDouble();
    out.PutDouble(obj_->norm(x, y));
  });
  table_.Add("flip", [this](wire::Call& in, wire::Call& out) {
    out.PutBoolean(obj_->flip(XBool(in.GetBoolean())));
  });
  table_.Add("post", [this](wire::Call& in, wire::Call&) {
    obj_->post(in.GetStringView());
  });
  table_.Add("blob", [this](wire::Call& in, wire::Call& out) {
    out.PutBytes(obj_->blob(in.GetBytesView()));
  });
  table_.Seal();
}

bool Echo_skel::Dispatch(const std::string& op, wire::Call& in,
                         wire::Call& out) {
  if (const auto* handler = table_.Find(op)) {
    (*handler)(in, out);
    return true;
  }
  return false;
}

}  // namespace heidi::demo
