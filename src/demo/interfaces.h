/* File demo.hh — hand-materialized heidi_cpp mapping of demo.idl.
 *
 * This is what `idlc --mapping heidi_cpp src/demo/demo.idl` generates
 * (tests/codegen/generated_compile_test.cpp holds the live template output
 * to this file's shape): Hd-prefixed abstract interface classes using only
 * Heidi data types, default parameters preserved, attributes as
 * GetX/SetX, plus the dynamic-type support the paper says is generated
 * but omits from Fig 3.
 */
#pragma once

#include "orb/heidi_types.h"

// IDL:Heidi/Status:1.0
enum HdStatus { Start, Stop };

// IDL:Heidi/S:1.0
class HdS : public virtual ::heidi::HdObject {
 public:
  HD_DECLARE_INTERFACE_TYPE();
  virtual void ping() = 0;
  virtual long value() = 0;
  ~HdS() override = default;
};

// IDL:Heidi/SSequence:1.0
typedef HdList<HdS*> HdSSequence;
typedef HdListIterator<HdS*> HdSSequenceIter;

// IDL:Heidi/Payload:1.0
typedef HdList<unsigned char> HdPayload;
typedef HdListIterator<unsigned char> HdPayloadIter;

// IDL:Heidi/A:1.0
class HdA : virtual public HdS {
 public:
  HD_DECLARE_INTERFACE_TYPE();
  virtual void f(HdA* a) = 0;
  virtual void g(HdS* s) = 0;
  virtual void p(long l = 0) = 0;
  virtual void q(HdStatus s = Start) = 0;
  virtual void s(XBool b = XTrue) = 0;
  virtual void t(HdSSequence* seq) = 0;
  virtual HdStatus GetButton() = 0;
  ~HdA() override = default;
};

// IDL:Heidi/Echo:1.0 — generated under the *view* mapping
// (`idlc --view-interfaces Echo`): `in` strings and octet sequences
// arrive as HdStringView/HdBytesView windows over the retained request
// frame, valid only for the duration of the dispatch. Implementations
// copy what they keep.
class HdEcho : public virtual ::heidi::HdObject {
 public:
  HD_DECLARE_INTERFACE_TYPE();
  virtual HdString echo(HdStringView msg) = 0;
  virtual long add(long a, long b) = 0;
  virtual double norm(double x, double y) = 0;
  virtual XBool flip(XBool b) = 0;
  virtual void post(HdStringView event) = 0;  // oneway
  virtual HdString blob(HdBytesView data) = 0;
  ~HdEcho() override = default;
};
