// Implementation objects for the demo interfaces — the "legacy
// application classes" a HeidiRMI deployment brings along. They record
// what they observe so tests can assert on remote effects.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "demo/interfaces.h"
#include "support/error.h"
#include "wire/serializable.h"

namespace heidi::demo {

class SImpl : public virtual HdS {
 public:
  HD_DECLARE_TYPE();

  explicit SImpl(long v = 0) : value_(v) {}

  void ping() override { ++pings_; }
  long value() override { return value_; }

  void SetValue(long v) { value_ = v; }
  int Pings() const { return pings_; }

 private:
  std::atomic<int> pings_{0};
  std::atomic<long> value_{0};
};

// An HdS whose state can be copied across the wire: implements
// HdSerializable, so `incopy` parameters pass it by value (§3.1). The
// dynamic-type parents include HdSerializable::TypeInfo() so the ORB's
// IsA check finds it.
class SerializableS : public virtual HdS, public wire::HdSerializable {
 public:
  HD_DECLARE_TYPE();

  explicit SerializableS(long v = 0) : value_(v) {}

  void ping() override { ++pings_; }
  long value() override { return value_; }
  void SetValue(long v) { value_ = v; }

  void MarshalState(wire::Call& call) const override {
    call.PutLong(static_cast<int32_t>(value_));
  }
  void UnmarshalState(wire::Call& call) override { value_ = call.GetLong(); }

 private:
  long value_ = 0;
  int pings_ = 0;
};

class AImpl : public virtual HdA {
 public:
  HD_DECLARE_TYPE();

  // Observations, readable by tests.
  struct Observed {
    int f_calls = 0;
    long last_f_value = -1;       // value() of the last f() argument
    bool last_f_null = true;
    int g_calls = 0;
    long last_g_value = -1;
    const void* last_g_pointer = nullptr;  // identity (local passthrough)
    std::vector<long> p_values;
    std::vector<HdStatus> q_values;
    std::vector<bool> s_values;
    std::vector<std::vector<long>> t_sequences;
  };

  void ping() override { ++pings_; }
  long value() override { return 7000; }

  void f(HdA* a) override {
    std::lock_guard lock(mutex_);
    ++observed_.f_calls;
    observed_.last_f_null = a == nullptr;
    observed_.last_f_value = a == nullptr ? -1 : a->value();
  }

  void g(HdS* s) override {
    std::lock_guard lock(mutex_);
    ++observed_.g_calls;
    observed_.last_g_value = s == nullptr ? -1 : s->value();
    observed_.last_g_pointer = s;
  }

  void p(long l) override {
    std::lock_guard lock(mutex_);
    observed_.p_values.push_back(l);
  }

  void q(HdStatus s) override {
    std::lock_guard lock(mutex_);
    observed_.q_values.push_back(s);
  }

  void s(XBool b) override {
    std::lock_guard lock(mutex_);
    observed_.s_values.push_back(b);
  }

  void t(HdSSequence* seq) override {
    std::lock_guard lock(mutex_);
    std::vector<long> values;
    if (seq != nullptr) {
      for (HdS* element : *seq) {
        values.push_back(element == nullptr ? -1 : element->value());
      }
    }
    observed_.t_sequences.push_back(std::move(values));
  }

  HdStatus GetButton() override { return button_; }
  void SetButtonState(HdStatus s) { button_ = s; }

  Observed Snapshot() const {
    std::lock_guard lock(mutex_);
    return observed_;
  }

 private:
  mutable std::mutex mutex_;
  Observed observed_;
  HdStatus button_ = Start;
  std::atomic<int> pings_{0};
};

class EchoImpl : public virtual HdEcho {
 public:
  HD_DECLARE_TYPE();

  // View parameters are windows into the request frame — anything kept
  // past the dispatch (events_) must be copied into owned storage.
  HdString echo(HdStringView msg) override { return HdString(msg); }
  long add(long a, long b) override { return a + b; }
  double norm(double x, double y) override;
  XBool flip(XBool b) override { return XBool(!static_cast<bool>(b)); }

  void post(HdStringView event) override {
    std::lock_guard lock(mutex_);
    events_.emplace_back(event);
    cv_.notify_all();
  }

  HdString blob(HdBytesView data) override {
    return HdString(data.rbegin(), data.rend());
  }

  // Blocks until at least `n` oneway posts arrived (tests need to await
  // asynchronous delivery). Returns false on timeout.
  bool WaitForPosts(size_t n, int timeout_ms = 2000);

  std::vector<HdString> Events() const {
    std::lock_guard lock(mutex_);
    return events_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<HdString> events_;
};

// An HdEcho that always throws, for remote-exception tests.
class ThrowingEcho : public EchoImpl {
 public:
  HD_DECLARE_TYPE();
  long add(long, long) override { throw HdError("add exploded"); }
};

}  // namespace heidi::demo
