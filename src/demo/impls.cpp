#include "demo/impls.h"

#include <chrono>
#include <cmath>

#include "demo/skels.h"
#include "demo/stubs.h"
#include "orb/registry.h"

// The generated interface classes live in the global namespace (legacy
// Heidi style), so their type-info definitions do too.
HD_DEFINE_INTERFACE_TYPE(HdS, "IDL:Heidi/S:1.0",
                         &::heidi::HdObject::TypeInfo())
HD_DEFINE_INTERFACE_TYPE(HdA, "IDL:Heidi/A:1.0", &HdS::TypeInfo())
HD_DEFINE_INTERFACE_TYPE(HdEcho, "IDL:Heidi/Echo:1.0",
                         &::heidi::HdObject::TypeInfo())

namespace heidi::demo {

HD_DEFINE_TYPE(SImpl, "IDL:Heidi/SImpl:1.0", &HdS::TypeInfo())
HD_DEFINE_TYPE(SerializableS, "IDL:Heidi/SerializableS:1.0",
               &HdS::TypeInfo(), &wire::HdSerializable::TypeInfo())
HD_DEFINE_TYPE(AImpl, "IDL:Heidi/AImpl:1.0", &HdA::TypeInfo())
HD_DEFINE_TYPE(EchoImpl, "IDL:Heidi/EchoImpl:1.0", &HdEcho::TypeInfo())
HD_DEFINE_TYPE(ThrowingEcho, "IDL:Heidi/ThrowingEcho:1.0",
               &EchoImpl::TypeInfo())

double EchoImpl::norm(double x, double y) { return std::sqrt(x * x + y * y); }

bool EchoImpl::WaitForPosts(size_t n, int timeout_ms) {
  std::unique_lock lock(mutex_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [&] { return events_.size() >= n; });
}

// ---------------------------------------------------------------------------
// Interface registrations: how the ORB learns to build the correct stub
// and skeleton from the type information in an object reference (§3.1).

namespace {

using orb::ObjectRef;
using orb::Orb;
using orb::RegisterInterface;

const RegisterInterface kRegisterS{
    "IDL:Heidi/S:1.0",
    [](Orb& o, ::heidi::HdObject* impl) {
      return std::make_unique<S_skel>(o, impl);
    },
    [](Orb& o, ObjectRef ref) {
      return std::make_shared<S_stub>(o, std::move(ref));
    }};

const RegisterInterface kRegisterA{
    "IDL:Heidi/A:1.0",
    [](Orb& o, ::heidi::HdObject* impl) {
      return std::make_unique<A_skel>(o, impl);
    },
    [](Orb& o, ObjectRef ref) {
      return std::make_shared<A_stub>(o, std::move(ref));
    }};

const RegisterInterface kRegisterEcho{
    "IDL:Heidi/Echo:1.0",
    [](Orb& o, ::heidi::HdObject* impl) {
      return std::make_unique<Echo_skel>(o, impl);
    },
    [](Orb& o, ObjectRef ref) {
      return std::make_shared<Echo_stub>(o, std::move(ref));
    }};

// Pass-by-value reception for SerializableS: references carrying its
// dynamic repository id still dispatch through S skeletons/stubs, but
// `incopy` parameters reconstruct a fresh copy via this factory.
const RegisterInterface kRegisterSerializableS{
    "IDL:Heidi/SerializableS:1.0",
    [](Orb& o, ::heidi::HdObject* impl) {
      return std::make_unique<S_skel>(o, impl);
    },
    [](Orb& o, ObjectRef ref) {
      return std::make_shared<S_stub>(o, std::move(ref));
    },
    [] { return std::make_shared<SerializableS>(); }};

}  // namespace

void ForceDemoRegistration() {
  // Touching the type infos guarantees the translation unit's static
  // registrations ran even under aggressive dead-stripping.
  (void)SImpl::TypeInfo();
  (void)SerializableS::TypeInfo();
  (void)AImpl::TypeInfo();
  (void)EchoImpl::TypeInfo();
}

}  // namespace heidi::demo
