// Hand-materialized heidi_cpp skeletons for demo.idl (§3.1: "skeletons do
// not share any inheritance relation with the abstract interface class" —
// they delegate to the implementation object; A_skel inherits S_skel and
// its dispatch falls back to S_skel::Dispatch, recursively up the
// hierarchy).
#pragma once

#include "demo/interfaces.h"
#include "orb/orb_api.h"

namespace heidi::demo {

class S_skel : public orb::HdSkeleton {
 public:
  S_skel(orb::Orb& o, ::heidi::HdObject* impl);

  bool Dispatch(const std::string& op, wire::Call& in,
                wire::Call& out) override;

 private:
  HdS* obj_;
  orb::DispatchTable table_;
};

class A_skel : public S_skel {
 public:
  A_skel(orb::Orb& o, ::heidi::HdObject* impl);

  bool Dispatch(const std::string& op, wire::Call& in,
                wire::Call& out) override;

 private:
  HdA* obj_;
  orb::DispatchTable table_;
};

class Echo_skel : public orb::HdSkeleton {
 public:
  Echo_skel(orb::Orb& o, ::heidi::HdObject* impl);

  bool Dispatch(const std::string& op, wire::Call& in,
                wire::Call& out) override;

 private:
  HdEcho* obj_;
  orb::DispatchTable table_;
};

}  // namespace heidi::demo
