// Umbrella header for the demo library: the hand-materialized heidi_cpp
// mapping of src/demo/demo.idl (interfaces, stubs, skeletons,
// implementation objects, registrations).
#pragma once

#include "demo/impls.h"       // IWYU pragma: export
#include "demo/interfaces.h"  // IWYU pragma: export
#include "demo/skels.h"       // IWYU pragma: export
#include "demo/stubs.h"       // IWYU pragma: export

namespace heidi::demo {
// Ensures the demo interface registrations are linked in.
void ForceDemoRegistration();
}  // namespace heidi::demo
