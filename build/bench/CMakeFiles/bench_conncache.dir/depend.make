# Empty dependencies file for bench_conncache.
# This may be replaced when dependencies are built.
