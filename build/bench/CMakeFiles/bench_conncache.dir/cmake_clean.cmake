file(REMOVE_RECURSE
  "CMakeFiles/bench_conncache.dir/bench_conncache.cpp.o"
  "CMakeFiles/bench_conncache.dir/bench_conncache.cpp.o.d"
  "bench_conncache"
  "bench_conncache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conncache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
