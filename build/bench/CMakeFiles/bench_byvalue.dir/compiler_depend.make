# Empty compiler generated dependencies file for bench_byvalue.
# This may be replaced when dependencies are built.
