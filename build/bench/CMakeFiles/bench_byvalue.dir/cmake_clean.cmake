file(REMOVE_RECURSE
  "CMakeFiles/bench_byvalue.dir/bench_byvalue.cpp.o"
  "CMakeFiles/bench_byvalue.dir/bench_byvalue.cpp.o.d"
  "bench_byvalue"
  "bench_byvalue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_byvalue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
