file(REMOVE_RECURSE
  "CMakeFiles/bench_marshal.dir/bench_marshal.cpp.o"
  "CMakeFiles/bench_marshal.dir/bench_marshal.cpp.o.d"
  "bench_marshal"
  "bench_marshal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_marshal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
