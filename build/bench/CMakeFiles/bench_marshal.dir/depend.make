# Empty dependencies file for bench_marshal.
# This may be replaced when dependencies are built.
