file(REMOVE_RECURSE
  "CMakeFiles/bench_call.dir/bench_call.cpp.o"
  "CMakeFiles/bench_call.dir/bench_call.cpp.o.d"
  "bench_call"
  "bench_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
