# Empty compiler generated dependencies file for bench_call.
# This may be replaced when dependencies are built.
