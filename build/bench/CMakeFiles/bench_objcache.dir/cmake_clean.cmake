file(REMOVE_RECURSE
  "CMakeFiles/bench_objcache.dir/bench_objcache.cpp.o"
  "CMakeFiles/bench_objcache.dir/bench_objcache.cpp.o.d"
  "bench_objcache"
  "bench_objcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_objcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
