# Empty compiler generated dependencies file for bench_objcache.
# This may be replaced when dependencies are built.
