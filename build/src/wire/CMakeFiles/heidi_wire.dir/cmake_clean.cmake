file(REMOVE_RECURSE
  "CMakeFiles/heidi_wire.dir/binary.cpp.o"
  "CMakeFiles/heidi_wire.dir/binary.cpp.o.d"
  "CMakeFiles/heidi_wire.dir/protocol.cpp.o"
  "CMakeFiles/heidi_wire.dir/protocol.cpp.o.d"
  "CMakeFiles/heidi_wire.dir/serializable.cpp.o"
  "CMakeFiles/heidi_wire.dir/serializable.cpp.o.d"
  "CMakeFiles/heidi_wire.dir/text.cpp.o"
  "CMakeFiles/heidi_wire.dir/text.cpp.o.d"
  "libheidi_wire.a"
  "libheidi_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heidi_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
