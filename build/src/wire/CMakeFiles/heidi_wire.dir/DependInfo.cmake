
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wire/binary.cpp" "src/wire/CMakeFiles/heidi_wire.dir/binary.cpp.o" "gcc" "src/wire/CMakeFiles/heidi_wire.dir/binary.cpp.o.d"
  "/root/repo/src/wire/protocol.cpp" "src/wire/CMakeFiles/heidi_wire.dir/protocol.cpp.o" "gcc" "src/wire/CMakeFiles/heidi_wire.dir/protocol.cpp.o.d"
  "/root/repo/src/wire/serializable.cpp" "src/wire/CMakeFiles/heidi_wire.dir/serializable.cpp.o" "gcc" "src/wire/CMakeFiles/heidi_wire.dir/serializable.cpp.o.d"
  "/root/repo/src/wire/text.cpp" "src/wire/CMakeFiles/heidi_wire.dir/text.cpp.o" "gcc" "src/wire/CMakeFiles/heidi_wire.dir/text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/heidi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/heidi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
