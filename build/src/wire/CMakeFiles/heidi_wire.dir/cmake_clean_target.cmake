file(REMOVE_RECURSE
  "libheidi_wire.a"
)
