# Empty dependencies file for heidi_wire.
# This may be replaced when dependencies are built.
