file(REMOVE_RECURSE
  "libheidi_tmpl.a"
)
