# Empty dependencies file for heidi_tmpl.
# This may be replaced when dependencies are built.
