file(REMOVE_RECURSE
  "CMakeFiles/heidi_tmpl.dir/compile.cpp.o"
  "CMakeFiles/heidi_tmpl.dir/compile.cpp.o.d"
  "CMakeFiles/heidi_tmpl.dir/cppgen.cpp.o"
  "CMakeFiles/heidi_tmpl.dir/cppgen.cpp.o.d"
  "CMakeFiles/heidi_tmpl.dir/interp.cpp.o"
  "CMakeFiles/heidi_tmpl.dir/interp.cpp.o.d"
  "CMakeFiles/heidi_tmpl.dir/mapfuncs.cpp.o"
  "CMakeFiles/heidi_tmpl.dir/mapfuncs.cpp.o.d"
  "libheidi_tmpl.a"
  "libheidi_tmpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heidi_tmpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
