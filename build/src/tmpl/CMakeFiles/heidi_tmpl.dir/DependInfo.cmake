
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmpl/compile.cpp" "src/tmpl/CMakeFiles/heidi_tmpl.dir/compile.cpp.o" "gcc" "src/tmpl/CMakeFiles/heidi_tmpl.dir/compile.cpp.o.d"
  "/root/repo/src/tmpl/cppgen.cpp" "src/tmpl/CMakeFiles/heidi_tmpl.dir/cppgen.cpp.o" "gcc" "src/tmpl/CMakeFiles/heidi_tmpl.dir/cppgen.cpp.o.d"
  "/root/repo/src/tmpl/interp.cpp" "src/tmpl/CMakeFiles/heidi_tmpl.dir/interp.cpp.o" "gcc" "src/tmpl/CMakeFiles/heidi_tmpl.dir/interp.cpp.o.d"
  "/root/repo/src/tmpl/mapfuncs.cpp" "src/tmpl/CMakeFiles/heidi_tmpl.dir/mapfuncs.cpp.o" "gcc" "src/tmpl/CMakeFiles/heidi_tmpl.dir/mapfuncs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/est/CMakeFiles/heidi_est.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/heidi_support.dir/DependInfo.cmake"
  "/root/repo/build/src/idl/CMakeFiles/heidi_idl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
