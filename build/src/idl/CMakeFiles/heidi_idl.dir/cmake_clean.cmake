file(REMOVE_RECURSE
  "CMakeFiles/heidi_idl.dir/ast.cpp.o"
  "CMakeFiles/heidi_idl.dir/ast.cpp.o.d"
  "CMakeFiles/heidi_idl.dir/lexer.cpp.o"
  "CMakeFiles/heidi_idl.dir/lexer.cpp.o.d"
  "CMakeFiles/heidi_idl.dir/parser.cpp.o"
  "CMakeFiles/heidi_idl.dir/parser.cpp.o.d"
  "CMakeFiles/heidi_idl.dir/sema.cpp.o"
  "CMakeFiles/heidi_idl.dir/sema.cpp.o.d"
  "CMakeFiles/heidi_idl.dir/token.cpp.o"
  "CMakeFiles/heidi_idl.dir/token.cpp.o.d"
  "libheidi_idl.a"
  "libheidi_idl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heidi_idl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
