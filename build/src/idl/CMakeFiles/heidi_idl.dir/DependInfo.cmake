
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/idl/ast.cpp" "src/idl/CMakeFiles/heidi_idl.dir/ast.cpp.o" "gcc" "src/idl/CMakeFiles/heidi_idl.dir/ast.cpp.o.d"
  "/root/repo/src/idl/lexer.cpp" "src/idl/CMakeFiles/heidi_idl.dir/lexer.cpp.o" "gcc" "src/idl/CMakeFiles/heidi_idl.dir/lexer.cpp.o.d"
  "/root/repo/src/idl/parser.cpp" "src/idl/CMakeFiles/heidi_idl.dir/parser.cpp.o" "gcc" "src/idl/CMakeFiles/heidi_idl.dir/parser.cpp.o.d"
  "/root/repo/src/idl/sema.cpp" "src/idl/CMakeFiles/heidi_idl.dir/sema.cpp.o" "gcc" "src/idl/CMakeFiles/heidi_idl.dir/sema.cpp.o.d"
  "/root/repo/src/idl/token.cpp" "src/idl/CMakeFiles/heidi_idl.dir/token.cpp.o" "gcc" "src/idl/CMakeFiles/heidi_idl.dir/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/heidi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
