file(REMOVE_RECURSE
  "libheidi_idl.a"
)
