# Empty compiler generated dependencies file for heidi_idl.
# This may be replaced when dependencies are built.
