# Empty compiler generated dependencies file for heidi_est.
# This may be replaced when dependencies are built.
