file(REMOVE_RECURSE
  "libheidi_est.a"
)
