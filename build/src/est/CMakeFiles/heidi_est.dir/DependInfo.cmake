
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/est/builder.cpp" "src/est/CMakeFiles/heidi_est.dir/builder.cpp.o" "gcc" "src/est/CMakeFiles/heidi_est.dir/builder.cpp.o.d"
  "/root/repo/src/est/node.cpp" "src/est/CMakeFiles/heidi_est.dir/node.cpp.o" "gcc" "src/est/CMakeFiles/heidi_est.dir/node.cpp.o.d"
  "/root/repo/src/est/repository.cpp" "src/est/CMakeFiles/heidi_est.dir/repository.cpp.o" "gcc" "src/est/CMakeFiles/heidi_est.dir/repository.cpp.o.d"
  "/root/repo/src/est/serialize.cpp" "src/est/CMakeFiles/heidi_est.dir/serialize.cpp.o" "gcc" "src/est/CMakeFiles/heidi_est.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/idl/CMakeFiles/heidi_idl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/heidi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
