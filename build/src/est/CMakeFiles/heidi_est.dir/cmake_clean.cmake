file(REMOVE_RECURSE
  "CMakeFiles/heidi_est.dir/builder.cpp.o"
  "CMakeFiles/heidi_est.dir/builder.cpp.o.d"
  "CMakeFiles/heidi_est.dir/node.cpp.o"
  "CMakeFiles/heidi_est.dir/node.cpp.o.d"
  "CMakeFiles/heidi_est.dir/repository.cpp.o"
  "CMakeFiles/heidi_est.dir/repository.cpp.o.d"
  "CMakeFiles/heidi_est.dir/serialize.cpp.o"
  "CMakeFiles/heidi_est.dir/serialize.cpp.o.d"
  "libheidi_est.a"
  "libheidi_est.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heidi_est.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
