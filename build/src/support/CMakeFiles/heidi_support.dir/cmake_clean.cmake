file(REMOVE_RECURSE
  "CMakeFiles/heidi_support.dir/logging.cpp.o"
  "CMakeFiles/heidi_support.dir/logging.cpp.o.d"
  "CMakeFiles/heidi_support.dir/strings.cpp.o"
  "CMakeFiles/heidi_support.dir/strings.cpp.o.d"
  "CMakeFiles/heidi_support.dir/typeinfo.cpp.o"
  "CMakeFiles/heidi_support.dir/typeinfo.cpp.o.d"
  "libheidi_support.a"
  "libheidi_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heidi_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
