file(REMOVE_RECURSE
  "libheidi_support.a"
)
