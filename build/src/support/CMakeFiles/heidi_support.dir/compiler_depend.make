# Empty compiler generated dependencies file for heidi_support.
# This may be replaced when dependencies are built.
