
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orb/communicator.cpp" "src/orb/CMakeFiles/heidi_orb.dir/communicator.cpp.o" "gcc" "src/orb/CMakeFiles/heidi_orb.dir/communicator.cpp.o.d"
  "/root/repo/src/orb/dispatch.cpp" "src/orb/CMakeFiles/heidi_orb.dir/dispatch.cpp.o" "gcc" "src/orb/CMakeFiles/heidi_orb.dir/dispatch.cpp.o.d"
  "/root/repo/src/orb/objref.cpp" "src/orb/CMakeFiles/heidi_orb.dir/objref.cpp.o" "gcc" "src/orb/CMakeFiles/heidi_orb.dir/objref.cpp.o.d"
  "/root/repo/src/orb/orb.cpp" "src/orb/CMakeFiles/heidi_orb.dir/orb.cpp.o" "gcc" "src/orb/CMakeFiles/heidi_orb.dir/orb.cpp.o.d"
  "/root/repo/src/orb/registry.cpp" "src/orb/CMakeFiles/heidi_orb.dir/registry.cpp.o" "gcc" "src/orb/CMakeFiles/heidi_orb.dir/registry.cpp.o.d"
  "/root/repo/src/orb/stub.cpp" "src/orb/CMakeFiles/heidi_orb.dir/stub.cpp.o" "gcc" "src/orb/CMakeFiles/heidi_orb.dir/stub.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wire/CMakeFiles/heidi_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/heidi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/heidi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
