file(REMOVE_RECURSE
  "libheidi_orb.a"
)
