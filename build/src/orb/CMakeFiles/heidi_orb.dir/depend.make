# Empty dependencies file for heidi_orb.
# This may be replaced when dependencies are built.
