file(REMOVE_RECURSE
  "CMakeFiles/heidi_orb.dir/communicator.cpp.o"
  "CMakeFiles/heidi_orb.dir/communicator.cpp.o.d"
  "CMakeFiles/heidi_orb.dir/dispatch.cpp.o"
  "CMakeFiles/heidi_orb.dir/dispatch.cpp.o.d"
  "CMakeFiles/heidi_orb.dir/objref.cpp.o"
  "CMakeFiles/heidi_orb.dir/objref.cpp.o.d"
  "CMakeFiles/heidi_orb.dir/orb.cpp.o"
  "CMakeFiles/heidi_orb.dir/orb.cpp.o.d"
  "CMakeFiles/heidi_orb.dir/registry.cpp.o"
  "CMakeFiles/heidi_orb.dir/registry.cpp.o.d"
  "CMakeFiles/heidi_orb.dir/stub.cpp.o"
  "CMakeFiles/heidi_orb.dir/stub.cpp.o.d"
  "libheidi_orb.a"
  "libheidi_orb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heidi_orb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
