file(REMOVE_RECURSE
  "libheidi_net.a"
)
