file(REMOVE_RECURSE
  "CMakeFiles/heidi_net.dir/buffered.cpp.o"
  "CMakeFiles/heidi_net.dir/buffered.cpp.o.d"
  "CMakeFiles/heidi_net.dir/channel.cpp.o"
  "CMakeFiles/heidi_net.dir/channel.cpp.o.d"
  "CMakeFiles/heidi_net.dir/inmemory.cpp.o"
  "CMakeFiles/heidi_net.dir/inmemory.cpp.o.d"
  "CMakeFiles/heidi_net.dir/tcp.cpp.o"
  "CMakeFiles/heidi_net.dir/tcp.cpp.o.d"
  "libheidi_net.a"
  "libheidi_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heidi_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
