# Empty compiler generated dependencies file for heidi_net.
# This may be replaced when dependencies are built.
