# CMake generated Testfile for 
# Source directory: /root/repo/src/demo
# Build directory: /root/repo/build/src/demo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
