# Empty dependencies file for heidi_demo.
# This may be replaced when dependencies are built.
