file(REMOVE_RECURSE
  "CMakeFiles/heidi_demo.dir/impls.cpp.o"
  "CMakeFiles/heidi_demo.dir/impls.cpp.o.d"
  "CMakeFiles/heidi_demo.dir/skels.cpp.o"
  "CMakeFiles/heidi_demo.dir/skels.cpp.o.d"
  "CMakeFiles/heidi_demo.dir/stubs.cpp.o"
  "CMakeFiles/heidi_demo.dir/stubs.cpp.o.d"
  "libheidi_demo.a"
  "libheidi_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heidi_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
