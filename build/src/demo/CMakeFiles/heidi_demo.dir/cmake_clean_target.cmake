file(REMOVE_RECURSE
  "libheidi_demo.a"
)
