file(REMOVE_RECURSE
  "CMakeFiles/heidi_codegen.dir/driver.cpp.o"
  "CMakeFiles/heidi_codegen.dir/driver.cpp.o.d"
  "CMakeFiles/heidi_codegen.dir/mappings.cpp.o"
  "CMakeFiles/heidi_codegen.dir/mappings.cpp.o.d"
  "libheidi_codegen.a"
  "libheidi_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heidi_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
