# Empty dependencies file for heidi_codegen.
# This may be replaced when dependencies are built.
