file(REMOVE_RECURSE
  "libheidi_codegen.a"
)
