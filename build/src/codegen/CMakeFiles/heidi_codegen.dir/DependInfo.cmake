
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/driver.cpp" "src/codegen/CMakeFiles/heidi_codegen.dir/driver.cpp.o" "gcc" "src/codegen/CMakeFiles/heidi_codegen.dir/driver.cpp.o.d"
  "/root/repo/src/codegen/mappings.cpp" "src/codegen/CMakeFiles/heidi_codegen.dir/mappings.cpp.o" "gcc" "src/codegen/CMakeFiles/heidi_codegen.dir/mappings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tmpl/CMakeFiles/heidi_tmpl.dir/DependInfo.cmake"
  "/root/repo/build/src/est/CMakeFiles/heidi_est.dir/DependInfo.cmake"
  "/root/repo/build/src/idl/CMakeFiles/heidi_idl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/heidi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
