file(REMOVE_RECURSE
  "CMakeFiles/heidi_control.dir/heidi_control.cpp.o"
  "CMakeFiles/heidi_control.dir/heidi_control.cpp.o.d"
  "heidi_control"
  "heidi_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heidi_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
