# Empty compiler generated dependencies file for heidi_control.
# This may be replaced when dependencies are built.
