
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/idlc.cpp" "examples/CMakeFiles/idlc.dir/idlc.cpp.o" "gcc" "examples/CMakeFiles/idlc.dir/idlc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/demo/CMakeFiles/heidi_demo.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/heidi_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/orb/CMakeFiles/heidi_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/tmpl/CMakeFiles/heidi_tmpl.dir/DependInfo.cmake"
  "/root/repo/build/src/est/CMakeFiles/heidi_est.dir/DependInfo.cmake"
  "/root/repo/build/src/idl/CMakeFiles/heidi_idl.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/heidi_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/heidi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/heidi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
