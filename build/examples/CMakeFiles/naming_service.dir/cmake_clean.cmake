file(REMOVE_RECURSE
  "CMakeFiles/naming_service.dir/generated/naming_rmi.cc.o"
  "CMakeFiles/naming_service.dir/generated/naming_rmi.cc.o.d"
  "CMakeFiles/naming_service.dir/naming_service.cpp.o"
  "CMakeFiles/naming_service.dir/naming_service.cpp.o.d"
  "generated/naming.hh"
  "generated/naming_rmi.cc"
  "generated/naming_rmi.hh"
  "naming_service"
  "naming_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naming_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
