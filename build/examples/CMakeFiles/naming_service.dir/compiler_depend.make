# Empty compiler generated dependencies file for naming_service.
# This may be replaced when dependencies are built.
