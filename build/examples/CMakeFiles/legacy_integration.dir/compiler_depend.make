# Empty compiler generated dependencies file for legacy_integration.
# This may be replaced when dependencies are built.
