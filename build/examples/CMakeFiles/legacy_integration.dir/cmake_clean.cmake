file(REMOVE_RECURSE
  "CMakeFiles/legacy_integration.dir/legacy_integration.cpp.o"
  "CMakeFiles/legacy_integration.dir/legacy_integration.cpp.o.d"
  "legacy_integration"
  "legacy_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
