file(REMOVE_RECURSE
  "CMakeFiles/telnet_debug.dir/telnet_debug.cpp.o"
  "CMakeFiles/telnet_debug.dir/telnet_debug.cpp.o.d"
  "telnet_debug"
  "telnet_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telnet_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
