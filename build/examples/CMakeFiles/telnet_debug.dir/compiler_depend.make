# Empty compiler generated dependencies file for telnet_debug.
# This may be replaced when dependencies are built.
