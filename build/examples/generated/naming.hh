/* File naming.hh */
#pragma once
#include "orb/heidi_types.h"

class HdNameService;

// IDL:Naming/NameService:1.0
class HdNameService : virtual public ::heidi::HdObject
{
public:
  virtual void bind(HdString, HdString) = 0;
  virtual HdString resolve(HdString) = 0;
  virtual XBool unbind(HdString) = 0;
  virtual long size() = 0;
  virtual HdString name_at(long) = 0;
  virtual ~HdNameService() { }
};

