file(REMOVE_RECURSE
  "CMakeFiles/wire_tests.dir/wire/binary_call_test.cpp.o"
  "CMakeFiles/wire_tests.dir/wire/binary_call_test.cpp.o.d"
  "CMakeFiles/wire_tests.dir/wire/fuzz_test.cpp.o"
  "CMakeFiles/wire_tests.dir/wire/fuzz_test.cpp.o.d"
  "CMakeFiles/wire_tests.dir/wire/protocol_test.cpp.o"
  "CMakeFiles/wire_tests.dir/wire/protocol_test.cpp.o.d"
  "CMakeFiles/wire_tests.dir/wire/roundtrip_property_test.cpp.o"
  "CMakeFiles/wire_tests.dir/wire/roundtrip_property_test.cpp.o.d"
  "CMakeFiles/wire_tests.dir/wire/text_call_test.cpp.o"
  "CMakeFiles/wire_tests.dir/wire/text_call_test.cpp.o.d"
  "wire_tests"
  "wire_tests.pdb"
  "wire_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
