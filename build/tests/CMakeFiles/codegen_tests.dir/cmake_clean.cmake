file(REMOVE_RECURSE
  "CMakeFiles/codegen_tests.dir/codegen/driver_test.cpp.o"
  "CMakeFiles/codegen_tests.dir/codegen/driver_test.cpp.o.d"
  "CMakeFiles/codegen_tests.dir/codegen/heidi_mapping_test.cpp.o"
  "CMakeFiles/codegen_tests.dir/codegen/heidi_mapping_test.cpp.o.d"
  "CMakeFiles/codegen_tests.dir/codegen/other_mappings_test.cpp.o"
  "CMakeFiles/codegen_tests.dir/codegen/other_mappings_test.cpp.o.d"
  "CMakeFiles/codegen_tests.dir/codegen/rmi_mapping_test.cpp.o"
  "CMakeFiles/codegen_tests.dir/codegen/rmi_mapping_test.cpp.o.d"
  "codegen_tests"
  "codegen_tests.pdb"
  "codegen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
