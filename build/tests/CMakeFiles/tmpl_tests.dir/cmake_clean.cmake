file(REMOVE_RECURSE
  "CMakeFiles/tmpl_tests.dir/tmpl/compile_test.cpp.o"
  "CMakeFiles/tmpl_tests.dir/tmpl/compile_test.cpp.o.d"
  "CMakeFiles/tmpl_tests.dir/tmpl/include_test.cpp.o"
  "CMakeFiles/tmpl_tests.dir/tmpl/include_test.cpp.o.d"
  "CMakeFiles/tmpl_tests.dir/tmpl/interp_test.cpp.o"
  "CMakeFiles/tmpl_tests.dir/tmpl/interp_test.cpp.o.d"
  "CMakeFiles/tmpl_tests.dir/tmpl/mapfuncs_test.cpp.o"
  "CMakeFiles/tmpl_tests.dir/tmpl/mapfuncs_test.cpp.o.d"
  "tmpl_tests"
  "tmpl_tests.pdb"
  "tmpl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmpl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
