# Empty dependencies file for tmpl_tests.
# This may be replaced when dependencies are built.
