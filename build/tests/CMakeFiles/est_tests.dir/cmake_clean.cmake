file(REMOVE_RECURSE
  "CMakeFiles/est_tests.dir/est/builder_test.cpp.o"
  "CMakeFiles/est_tests.dir/est/builder_test.cpp.o.d"
  "CMakeFiles/est_tests.dir/est/node_test.cpp.o"
  "CMakeFiles/est_tests.dir/est/node_test.cpp.o.d"
  "CMakeFiles/est_tests.dir/est/repository_test.cpp.o"
  "CMakeFiles/est_tests.dir/est/repository_test.cpp.o.d"
  "CMakeFiles/est_tests.dir/est/serialize_test.cpp.o"
  "CMakeFiles/est_tests.dir/est/serialize_test.cpp.o.d"
  "est_tests"
  "est_tests.pdb"
  "est_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/est_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
