# Empty dependencies file for est_tests.
# This may be replaced when dependencies are built.
