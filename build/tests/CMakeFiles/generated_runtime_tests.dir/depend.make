# Empty dependencies file for generated_runtime_tests.
# This may be replaced when dependencies are built.
