file(REMOVE_RECURSE
  "CMakeFiles/generated_runtime_tests.dir/codegen/generated_runtime_test.cpp.o"
  "CMakeFiles/generated_runtime_tests.dir/codegen/generated_runtime_test.cpp.o.d"
  "CMakeFiles/generated_runtime_tests.dir/generated/player_rmi.cc.o"
  "CMakeFiles/generated_runtime_tests.dir/generated/player_rmi.cc.o.d"
  "generated/player.hh"
  "generated/player_rmi.cc"
  "generated/player_rmi.hh"
  "generated_runtime_tests"
  "generated_runtime_tests.pdb"
  "generated_runtime_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generated_runtime_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
