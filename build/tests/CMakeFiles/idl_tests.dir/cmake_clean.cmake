file(REMOVE_RECURSE
  "CMakeFiles/idl_tests.dir/idl/lexer_test.cpp.o"
  "CMakeFiles/idl_tests.dir/idl/lexer_test.cpp.o.d"
  "CMakeFiles/idl_tests.dir/idl/parser_test.cpp.o"
  "CMakeFiles/idl_tests.dir/idl/parser_test.cpp.o.d"
  "CMakeFiles/idl_tests.dir/idl/robustness_test.cpp.o"
  "CMakeFiles/idl_tests.dir/idl/robustness_test.cpp.o.d"
  "CMakeFiles/idl_tests.dir/idl/sema_test.cpp.o"
  "CMakeFiles/idl_tests.dir/idl/sema_test.cpp.o.d"
  "CMakeFiles/idl_tests.dir/idl/union_test.cpp.o"
  "CMakeFiles/idl_tests.dir/idl/union_test.cpp.o.d"
  "idl_tests"
  "idl_tests.pdb"
  "idl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
