file(REMOVE_RECURSE
  "CMakeFiles/idlc_cli_tests.dir/codegen/idlc_cli_test.cpp.o"
  "CMakeFiles/idlc_cli_tests.dir/codegen/idlc_cli_test.cpp.o.d"
  "idlc_cli_tests"
  "idlc_cli_tests.pdb"
  "idlc_cli_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idlc_cli_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
