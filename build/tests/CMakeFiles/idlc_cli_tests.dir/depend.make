# Empty dependencies file for idlc_cli_tests.
# This may be replaced when dependencies are built.
