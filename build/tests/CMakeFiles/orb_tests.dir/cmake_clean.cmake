file(REMOVE_RECURSE
  "CMakeFiles/orb_tests.dir/orb/caches_test.cpp.o"
  "CMakeFiles/orb_tests.dir/orb/caches_test.cpp.o.d"
  "CMakeFiles/orb_tests.dir/orb/custom_protocol_test.cpp.o"
  "CMakeFiles/orb_tests.dir/orb/custom_protocol_test.cpp.o.d"
  "CMakeFiles/orb_tests.dir/orb/dispatch_test.cpp.o"
  "CMakeFiles/orb_tests.dir/orb/dispatch_test.cpp.o.d"
  "CMakeFiles/orb_tests.dir/orb/failure_test.cpp.o"
  "CMakeFiles/orb_tests.dir/orb/failure_test.cpp.o.d"
  "CMakeFiles/orb_tests.dir/orb/integration_test.cpp.o"
  "CMakeFiles/orb_tests.dir/orb/integration_test.cpp.o.d"
  "CMakeFiles/orb_tests.dir/orb/interceptor_test.cpp.o"
  "CMakeFiles/orb_tests.dir/orb/interceptor_test.cpp.o.d"
  "CMakeFiles/orb_tests.dir/orb/objref_test.cpp.o"
  "CMakeFiles/orb_tests.dir/orb/objref_test.cpp.o.d"
  "CMakeFiles/orb_tests.dir/orb/stress_test.cpp.o"
  "CMakeFiles/orb_tests.dir/orb/stress_test.cpp.o.d"
  "orb_tests"
  "orb_tests.pdb"
  "orb_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orb_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
