/* File player.hh */
#pragma once
#include "orb/heidi_types.h"

class HdSource;
class HdPlayer;

// IDL:Media/Mode:1.0
enum HdMode { Playing, Paused, Stopped };

// IDL:Media/SourceList:1.0
typedef HdList<HdSource*> HdSourceList;
typedef HdListIterator<HdSource*> HdSourceListIter;

// IDL:Media/MediaError:1.0
class HdMediaError : public ::heidi::RemoteError {
public:
  HdMediaError() : ::heidi::RemoteError("IDL:Media/MediaError:1.0") { }
  long code{};
  HdString reason{};
};

// IDL:Media/Source:1.0
class HdSource : virtual public ::heidi::HdObject
{
public:
  virtual long id() = 0;
  virtual ~HdSource() { }
};

// IDL:Media/Player:1.0
class HdPlayer : virtual public HdSource
{
public:
  virtual void play(HdString, long position = 0) = 0;
  virtual long seek(long, long&) = 0;
  virtual HdString describe(HdMode, XBool verbose = XFalse) = 0;
  virtual void attach(HdSource*) = 0;
  virtual void mix(HdSourceList*) = 0;
  virtual void load(HdString) = 0;
  virtual void log(HdString) = 0;
  virtual HdMode GetMode() = 0;
  virtual long GetVolume() = 0;
  virtual void SetVolume(long) = 0;
  virtual ~HdPlayer() { }
};

