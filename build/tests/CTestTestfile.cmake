# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/idl_tests[1]_include.cmake")
include("/root/repo/build/tests/est_tests[1]_include.cmake")
include("/root/repo/build/tests/tmpl_tests[1]_include.cmake")
include("/root/repo/build/tests/codegen_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/wire_tests[1]_include.cmake")
include("/root/repo/build/tests/idlc_cli_tests[1]_include.cmake")
include("/root/repo/build/tests/generated_runtime_tests[1]_include.cmake")
include("/root/repo/build/tests/orb_tests[1]_include.cmake")
